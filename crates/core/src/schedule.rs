//! Symbolic per-chip execution schedules for every built-in layout.
//!
//! This module mirrors the dataflows implemented by the partitioned runtime
//! (`esti-runtime`) at the level of the paper's partitioning algebra
//! (Section 3.2): each step is either a collective, an einsum, or a local
//! op, and each intermediate tensor carries a [`ShardingSpec`] plus a
//! global (unsharded) shape. A [`Schedule`] can be *verified* — every
//! collective must be legal under the sharding-algebra rewrite rules,
//! every einsum's output sharding must follow from its inputs, and every
//! local shape must divide evenly over the mesh axes it is sharded on.
//!
//! Schedules are built over the layout's *logical* mesh
//! (`TorusShape::new(mesh.x, mesh.y, mesh.z)`), matching the runtime's
//! rank arithmetic rather than a physical slice shape.
//!
//! The static analyzer (`esti-verify`) consumes these schedules for its
//! SPMD-conformance pass, and [`preflight`] is wired into the runtime
//! engine so an invalid partition plan fails fast with a description of
//! the offending step instead of a shape panic deep inside a worker
//! thread.

use crate::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use crate::sharding::ShardingSpec;
use esti_hal::DType;
use esti_model::{BlockKind, MlpKind, ModelConfig};
use esti_topology::{Axis, AxisSet, TorusShape};

/// A tensor known only symbolically: a sharding spec plus the global
/// (logical, unsharded) shape. The per-chip shape is derived on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymTensor {
    /// Sharding layout: one entry per dimension plus partial-sum markers.
    pub spec: ShardingSpec,
    /// Global (unsharded) extent of each dimension, same order as `spec`.
    pub global: Vec<usize>,
}

impl SymTensor {
    /// Fully replicated tensor with the given dimension names and global shape.
    ///
    /// # Panics
    ///
    /// Panics if `names` and `global` lengths differ (a schedule-builder
    /// bug, not a plan property).
    #[must_use]
    pub fn new(names: &str, global: &[usize]) -> Self {
        assert_eq!(
            names.chars().count(),
            global.len(),
            "dimension names and global shape must have equal length"
        );
        SymTensor { spec: ShardingSpec::new(names), global: global.to_vec() }
    }

    /// Builder: shard dimension `name` over `axes`.
    #[must_use]
    pub fn shard(mut self, name: char, axes: AxisSet) -> Self {
        self.spec = self.spec.shard(name, axes);
        self
    }

    /// Builder: mark the tensor as a partial sum over `axes`.
    #[must_use]
    pub fn partial(mut self, axes: AxisSet) -> Self {
        self.spec = self.spec.partial(axes);
        self
    }

    /// Index of dimension `name`, if present.
    #[must_use]
    pub fn dim_index(&self, name: char) -> Option<usize> {
        self.spec.dims().iter().position(|d| d.name == name)
    }

    /// Global size of dimension `name`.
    fn global_of(&self, name: char) -> Option<usize> {
        self.dim_index(name).map(|i| self.global[i])
    }

    /// Mesh axes dimension `name` is sharded over (empty if unsharded).
    fn axes_of(&self, name: char) -> Option<AxisSet> {
        self.dim_index(name).map(|i| self.spec.dims()[i].axes)
    }

    /// Per-chip shape, or an error naming the indivisible dimension.
    ///
    /// Unlike [`ShardingSpec::local_shape`], this does not panic: the whole
    /// point of the symbolic schedule is to report bad plans as values.
    pub fn local_shape(&self, torus: TorusShape) -> Result<Vec<usize>, String> {
        let mut shape = Vec::with_capacity(self.global.len());
        for (dim, &g) in self.spec.dims().iter().zip(&self.global) {
            let parts = torus.group_size(dim.axes);
            if g % parts != 0 {
                return Err(format!(
                    "dimension {} of size {g} not divisible by {parts} partitions (axes {})",
                    dim.name, dim.axes
                ));
            }
            shape.push(g / parts);
        }
        Ok(shape)
    }

    /// Per-chip element count.
    pub fn local_elements(&self, torus: TorusShape) -> Result<usize, String> {
        Ok(self.local_shape(torus)?.iter().product())
    }

    /// Well-formedness: dimension axis sets pairwise disjoint, the partial-sum
    /// axes disjoint from every dimension's axes, and every sharded dimension
    /// divisible by its partition count on `torus`.
    pub fn check(&self, torus: TorusShape) -> Result<(), String> {
        let dims = self.spec.dims();
        for (i, a) in dims.iter().enumerate() {
            for b in &dims[i + 1..] {
                if !a.axes.is_disjoint(b.axes) {
                    return Err(format!(
                        "dimensions {} and {} share mesh axes ({} vs {})",
                        a.name, b.name, a.axes, b.axes
                    ));
                }
            }
            if !a.axes.is_disjoint(self.spec.partial_sum()) {
                return Err(format!(
                    "dimension {} axes {} overlap partial-sum axes {}",
                    a.name,
                    a.axes,
                    self.spec.partial_sum()
                ));
            }
        }
        self.local_shape(torus).map(|_| ())
    }
}

impl std::fmt::Display for SymTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {:?}", self.spec, self.global)
    }
}

/// Rebuild a spec from parts, validating what [`ShardingSpec::shard`] would
/// otherwise panic on. Returns `Err` on overlapping axis sets.
fn rebuild_spec(dims: &[(char, AxisSet)], partial: AxisSet) -> Result<ShardingSpec, String> {
    for (i, (na, a)) in dims.iter().enumerate() {
        for (nb, b) in &dims[i + 1..] {
            if !a.is_disjoint(*b) {
                return Err(format!(
                    "dimensions {na} and {nb} would share mesh axes ({a} vs {b})"
                ));
            }
        }
        if !a.is_disjoint(partial) {
            return Err(format!(
                "dimension {na} axes {a} would overlap partial-sum axes {partial}"
            ));
        }
    }
    let names: String = dims.iter().map(|(n, _)| *n).collect();
    let mut spec = ShardingSpec::new(&names);
    for (n, a) in dims {
        if !a.is_empty() {
            spec = spec.shard(*n, *a);
        }
    }
    if !partial.is_empty() {
        spec = spec.partial(partial);
    }
    Ok(spec)
}

/// The collective operations of the partitioning algebra (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymOp {
    /// `all-gather(dim)`: removes the given axes from `dim`'s sharding.
    AllGather {
        /// Dimension being gathered.
        dim: char,
    },
    /// `reduce-scatter(dim)`: resolves partial sums over the given axes by
    /// sharding `dim` over them.
    ReduceScatter {
        /// Dimension being scattered.
        dim: char,
    },
    /// `all-reduce`: resolves partial sums over the given axes, leaving the
    /// result replicated over them.
    AllReduce,
    /// `all-to-all`: resharding that moves axes from `concat` to `split`.
    AllToAll {
        /// Dimension that gains the axes (is split).
        split: char,
        /// Dimension that loses the axes (is concatenated).
        concat: char,
    },
}

impl std::fmt::Display for SymOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymOp::AllGather { dim } => write!(f, "all-gather({dim})"),
            SymOp::ReduceScatter { dim } => write!(f, "reduce-scatter({dim})"),
            SymOp::AllReduce => write!(f, "all-reduce"),
            SymOp::AllToAll { split, concat } => {
                write!(f, "all-to-all({split}<-{concat})")
            }
        }
    }
}

/// Apply a collective rewrite rule to a symbolic tensor, producing the
/// post-collective sharding, or an error explaining why the collective is
/// illegal in this position (the static analogue of a runtime deadlock or
/// shape mismatch).
pub fn apply_op(op: SymOp, axes: AxisSet, input: &SymTensor) -> Result<SymTensor, String> {
    if axes.is_empty() {
        return Err(format!("{op}: empty axis set"));
    }
    let dims: Vec<(char, AxisSet)> =
        input.spec.dims().iter().map(|d| (d.name, d.axes)).collect();
    let partial = input.spec.partial_sum();

    let (new_dims, new_partial) = match op {
        SymOp::AllGather { dim } => {
            let cur = input
                .axes_of(dim)
                .ok_or_else(|| format!("{op}: no dimension {dim} in {input}"))?;
            if !axes.is_subset_of(cur) {
                return Err(format!(
                    "{op} over {axes}: dimension {dim} is only sharded over {cur}"
                ));
            }
            let nd = dims
                .iter()
                .map(|&(n, a)| if n == dim { (n, a.without(axes)) } else { (n, a) })
                .collect::<Vec<_>>();
            (nd, partial)
        }
        SymOp::ReduceScatter { dim } => {
            if input.dim_index(dim).is_none() {
                return Err(format!("{op}: no dimension {dim} in {input}"));
            }
            if !axes.is_subset_of(partial) {
                return Err(format!(
                    "{op} over {axes}: tensor is only a partial sum over {partial}"
                ));
            }
            for &(n, a) in &dims {
                if !a.is_disjoint(axes) {
                    return Err(format!(
                        "{op} over {axes}: axes already used by dimension {n} ({a})"
                    ));
                }
            }
            let nd = dims
                .iter()
                .map(|&(n, a)| if n == dim { (n, a.union(axes)) } else { (n, a) })
                .collect::<Vec<_>>();
            (nd, partial.without(axes))
        }
        SymOp::AllReduce => {
            if !axes.is_subset_of(partial) {
                return Err(format!(
                    "{op} over {axes}: tensor is only a partial sum over {partial}"
                ));
            }
            (dims, partial.without(axes))
        }
        SymOp::AllToAll { split, concat } => {
            if split == concat {
                return Err(format!("{op}: split and concat dimensions are equal"));
            }
            let concat_axes = input
                .axes_of(concat)
                .ok_or_else(|| format!("{op}: no dimension {concat} in {input}"))?;
            let split_axes = input
                .axes_of(split)
                .ok_or_else(|| format!("{op}: no dimension {split} in {input}"))?;
            if !axes.is_subset_of(concat_axes) {
                return Err(format!(
                    "{op} over {axes}: dimension {concat} is only sharded over {concat_axes}"
                ));
            }
            if !split_axes.is_disjoint(axes) {
                return Err(format!(
                    "{op} over {axes}: axes already used by split dimension {split}"
                ));
            }
            if !partial.is_disjoint(axes) {
                return Err(format!(
                    "{op} over {axes}: axes carry an unresolved partial sum"
                ));
            }
            let nd = dims
                .iter()
                .map(|&(n, a)| {
                    if n == concat {
                        (n, a.without(axes))
                    } else if n == split {
                        (n, a.union(axes))
                    } else {
                        (n, a)
                    }
                })
                .collect::<Vec<_>>();
            (nd, partial)
        }
    };

    let spec = rebuild_spec(&new_dims, new_partial)?;
    Ok(SymTensor { spec, global: input.global.clone() })
}

/// Infer the output sharding of an einsum `x · w` contracting over
/// `contract`, with output dimension order `out_names`.
///
/// Rules (Section 3.2): contracted dimensions must agree between operands in
/// both global extent and sharding; each output dimension inherits the axes
/// of whichever operand carries it (and they must agree if both do); the
/// output accumulates the partial-sum markers of both inputs plus the axes
/// of every contracted sharded dimension (a sharded contraction produces a
/// partial sum).
pub fn expected_einsum(
    x: &SymTensor,
    w: &SymTensor,
    contract: &[char],
    out_names: &str,
) -> Result<SymTensor, String> {
    let mut out_partial = x.spec.partial_sum().union(w.spec.partial_sum());
    for &c in contract {
        let (Some(xa), Some(xg)) = (x.axes_of(c), x.global_of(c)) else {
            return Err(format!("einsum: contracted dimension {c} missing from x ({x})"));
        };
        let (Some(wa), Some(wg)) = (w.axes_of(c), w.global_of(c)) else {
            return Err(format!("einsum: contracted dimension {c} missing from w ({w})"));
        };
        if xg != wg {
            return Err(format!(
                "einsum: contracted dimension {c} has global size {xg} in x but {wg} in w"
            ));
        }
        if xa != wa {
            return Err(format!(
                "einsum: contracted dimension {c} sharded over {xa} in x but {wa} in w"
            ));
        }
        out_partial = out_partial.union(xa);
    }

    let mut dims: Vec<(char, AxisSet)> = Vec::new();
    let mut global = Vec::new();
    for name in out_names.chars() {
        let from_x = x.axes_of(name).zip(x.global_of(name));
        let from_w = w.axes_of(name).zip(w.global_of(name));
        let (axes, g) = match (from_x, from_w) {
            (Some((xa, xg)), Some((wa, wg))) => {
                if xg != wg || xa != wa {
                    return Err(format!(
                        "einsum: batch dimension {name} disagrees between operands"
                    ));
                }
                (xa, xg)
            }
            (Some(v), None) | (None, Some(v)) => v,
            (None, None) => {
                return Err(format!(
                    "einsum: output dimension {name} appears in neither operand"
                ))
            }
        };
        dims.push((name, axes));
        global.push(g);
    }
    // Every non-contracted input dimension must appear in the output.
    for t in [x, w] {
        for d in t.spec.dims() {
            if !contract.contains(&d.name) && !out_names.contains(d.name) {
                return Err(format!(
                    "einsum: dimension {} of an operand is neither contracted nor output",
                    d.name
                ));
            }
        }
    }

    let spec = rebuild_spec(&dims, out_partial)?;
    Ok(SymTensor { spec, global })
}

/// Wire format of a collective's payload.
///
/// Dense payloads are charged at the runtime's dense activation accounting;
/// [`WireFormat::Int8`] marks the quantized weight gathers of Section 3.6,
/// whose wire volume is int8 values plus one f32 scale per column
/// (`esti-collectives`' `quant_wire_bytes`). Like [`Step::Collective`]'s
/// `chunks`, this is an execution annotation: sharding semantics are
/// identical for both formats, but the quant-dataflow pass in `esti-verify`
/// checks byte accounting and scale provenance against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Dense activation/weight payload.
    Dense,
    /// Quantized payload: int8 values + per-column f32 scales (Section 3.6).
    Int8,
}

/// One step of a per-chip schedule.
#[derive(Debug, Clone)]
pub enum Step {
    /// A collective over a mesh-axis group: `input` resharded to `output`.
    Collective {
        /// Human-readable step name for diagnostics.
        label: &'static str,
        /// Which algebra rewrite this collective performs.
        op: SymOp,
        /// Mesh axes the communicating group spans.
        axes: AxisSet,
        /// Sharding before the collective.
        input: SymTensor,
        /// Declared sharding after the collective (checked against the rule).
        output: SymTensor,
        /// Number of chunks the runtime moves this collective in
        /// (Section 3.4 overlap): 1 means monolithic; `N > 1` means the
        /// runtime pipelines N sub-transfers, computing on chunk `i-1`
        /// while chunk `i` is in flight. Purely a runtime execution hint —
        /// the sharding-algebra semantics are identical for every value.
        chunks: usize,
        /// Payload wire format (see [`WireFormat`]).
        wire: WireFormat,
    },
    /// A sharded einsum (matmul): `x · w` contracting `contract`.
    Einsum {
        /// Human-readable step name for diagnostics.
        label: &'static str,
        /// Activation operand.
        x: SymTensor,
        /// Weight operand.
        w: SymTensor,
        /// Contracted dimension names.
        contract: Vec<char>,
        /// Declared output (checked against [`expected_einsum`]).
        output: SymTensor,
    },
    /// A chip-local op (layernorm, softmax-attention, nonlinearity, residual
    /// add, batch slice, ...). Never communicates; may not resolve partial
    /// sums and may not materialize data the chip does not hold.
    Local {
        /// Human-readable step name for diagnostics.
        label: &'static str,
        /// If true, every input must be partial-sum free (the op is
        /// nonlinear, e.g. softmax or a layernorm divide).
        needs_full: bool,
        /// Input tensors (must already be available on-chip).
        inputs: Vec<SymTensor>,
        /// Declared output.
        output: SymTensor,
    },
}

impl Step {
    /// The declared output tensor of this step.
    #[must_use]
    pub fn output(&self) -> &SymTensor {
        match self {
            Step::Collective { output, .. }
            | Step::Einsum { output, .. }
            | Step::Local { output, .. } => output,
        }
    }

    /// The step's diagnostic label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Step::Collective { label, .. }
            | Step::Einsum { label, .. }
            | Step::Local { label, .. } => label,
        }
    }
}

/// A complete symbolic schedule for one (layout, model, batch, seq)
/// combination: the per-layer step sequence plus the final (post-stack)
/// steps, with the tensors that must be resident at layer entry.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The layout this schedule implements.
    pub layout: Layout,
    /// The logical mesh the schedule runs on (from `layout.mesh`).
    pub torus: TorusShape,
    /// Global batch size the schedule was built for.
    pub batch: usize,
    /// Sequence length the schedule was built for.
    pub seq: usize,
    /// The residual-stream tensor at layer entry (and, by the residual
    /// invariant, at layer exit).
    pub boundary: SymTensor,
    /// Per-layer weight tensors, as stored on chip.
    pub weights: Vec<SymTensor>,
    /// Steps executed by every layer.
    pub layer: Vec<Step>,
    /// Weights used by the final (post-stack) steps.
    pub final_weights: Vec<SymTensor>,
    /// Steps executed once after the layer stack (final layernorm + logits).
    pub final_steps: Vec<Step>,
}

impl Schedule {
    /// Verify the whole schedule: boundary and weights well-formed, every
    /// step's declared output reproducible from the rewrite rules, every
    /// intermediate divisible, and the layer body closed over the boundary
    /// sharding (residual invariant).
    pub fn verify(&self) -> Result<(), String> {
        self.boundary
            .check(self.torus)
            .map_err(|e| format!("layer boundary: {e}"))?;
        for w in self.weights.iter().chain(&self.final_weights) {
            w.check(self.torus).map_err(|e| format!("weight {w}: {e}"))?;
        }

        let mut avail: Vec<SymTensor> = vec![self.boundary.clone()];
        avail.extend(self.weights.iter().cloned());
        let last = walk_steps(&self.layer, &mut avail, self.torus)?;
        if let Some(out) = last {
            if out != self.boundary {
                return Err(format!(
                    "residual invariant violated: layer produces {out} but entered with {}",
                    self.boundary
                ));
            }
        }

        let mut avail: Vec<SymTensor> = vec![self.boundary.clone()];
        avail.extend(self.final_weights.iter().cloned());
        walk_steps(&self.final_steps, &mut avail, self.torus)?;
        Ok(())
    }

    /// All collective steps: one layer iteration followed by the final
    /// steps, in execution order.
    #[must_use]
    pub fn collectives(&self) -> Vec<&Step> {
        self.layer
            .iter()
            .chain(&self.final_steps)
            .filter(|s| matches!(s, Step::Collective { .. }))
            .collect()
    }

    /// Annotate the collectives the overlapped runtime pipelines with their
    /// chunk counts: each marked step gets `chunks =
    /// effective_chunks(extent, want)` where `extent` is the chunkable
    /// extent of the transfer (see [`effective_chunks`]), and every other
    /// collective stays monolithic. The marked set per dataflow mirrors
    /// exactly what `esti-runtime`'s overlapped executor chunks, so the
    /// static analyzer sees the same sub-op streams the engine issues.
    ///
    /// Chunking never changes sharding semantics, so the annotated
    /// schedule verifies iff the original does.
    #[must_use]
    pub fn with_overlap_chunks(mut self, want: usize) -> Self {
        if want <= 1 {
            return self;
        }
        let flow = flow_of(&self.layout);
        let torus = self.torus;
        for step in self.layer.iter_mut().chain(&mut self.final_steps) {
            let Step::Collective { label, op, axes, input, chunks, .. } = step else {
                continue;
            };
            if !overlap_chunkable(flow, label) {
                continue;
            }
            let Ok(shape) = input.local_shape(torus) else { continue };
            let extent = match op {
                SymOp::AllGather { dim } => input.dim_index(*dim).map(|i| shape[i]),
                SymOp::ReduceScatter { dim } => input
                    .dim_index(*dim)
                    .map(|i| shape[i] / torus.group_size(*axes)),
                // The runtime chunks an all-reduce along the last (feature)
                // dimension of the partial-sum tensor.
                SymOp::AllReduce => shape.last().copied(),
                // Attention all-to-alls stay monolithic: they sit between
                // two local ops with nothing to overlap against.
                SymOp::AllToAll { .. } => None,
            };
            if let Some(extent) = extent {
                *chunks = effective_chunks(extent, want);
            }
        }
        self
    }

    /// Annotate the wire format the runtime uses for this weight storage
    /// dtype: with [`DType::Int8`], every per-layer weight all-gather moves
    /// quantized (int8 values + per-column f32 scales, Section 3.6) —
    /// exactly the steps the engine's weight gathers quantize, in both the
    /// fully weight-gathered and hybrid dataflows, monolithic or chunked.
    /// All other dtypes leave the schedule dense.
    #[must_use]
    pub fn with_weight_dtype(mut self, dtype: DType) -> Self {
        if dtype != DType::Int8 {
            return self;
        }
        for step in self.layer.iter_mut().chain(&mut self.final_steps) {
            if let Step::Collective { label, op: SymOp::AllGather { .. }, wire, .. } = step {
                if label.ends_with("weight all-gather") {
                    *wire = WireFormat::Int8;
                }
            }
        }
        self
    }

    /// The collectives the overlapped executor pipelines, quantified for
    /// the execution planner: per site, the per-chip wire volume, the
    /// extent chunking divides, and the per-chip FLOPs of the einsums the
    /// runtime fuses into the loop. The marked set is exactly the one
    /// [`Schedule::with_overlap_chunks`] annotates, so the planner costs
    /// the same streams the engine issues and the verifier checks.
    #[must_use]
    pub fn overlap_sites(&self) -> Vec<OverlapSite> {
        let flow = flow_of(&self.layout);
        let torus = self.torus;
        let mut sites = Vec::new();
        for (steps, per_layer) in [(&self.layer, true), (&self.final_steps, false)] {
            for (i, step) in steps.iter().enumerate() {
                let Step::Collective { label, op, axes, input, wire, .. } = step else {
                    continue;
                };
                if !overlap_chunkable(flow, label) {
                    continue;
                }
                let Ok(shape) = input.local_shape(torus) else { continue };
                let extent = match op {
                    SymOp::AllGather { dim } => input.dim_index(*dim).map(|ix| shape[ix]),
                    SymOp::ReduceScatter { dim } => {
                        input.dim_index(*dim).map(|ix| shape[ix] / torus.group_size(*axes))
                    }
                    SymOp::AllReduce => shape.last().copied(),
                    SymOp::AllToAll { .. } => None,
                };
                let Some(extent) = extent else { continue };
                let group = torus.group_size(*axes);
                let local: usize = shape.iter().product();
                // Appendix A.1 byte conventions, matching the runtime's
                // traffic ledger: all-gather charges per-chip output bytes,
                // reduce-scatter input bytes, all-reduce both phases; dense
                // payloads cost 2 B/element, quantized weight gathers the
                // int8 closed form (1 B/value + one f32 scale per column,
                // from each rank).
                let bytes = match (*op, *wire) {
                    (SymOp::AllGather { .. }, WireFormat::Int8) => {
                        (group * (shape[0] * shape[1] + 4 * shape[1])) as f64
                    }
                    (SymOp::AllGather { .. }, WireFormat::Dense) => (local * group * 2) as f64,
                    (SymOp::AllReduce, _) => (local * 4) as f64,
                    (SymOp::ReduceScatter { .. } | SymOp::AllToAll { .. }, _) => {
                        (local * 2) as f64
                    }
                };
                sites.push(OverlapSite {
                    label,
                    op: *op,
                    group,
                    bytes,
                    extent,
                    fused_flops: fused_flops_at(steps, i, torus),
                    per_layer,
                });
            }
        }
        sites
    }
}

/// One collective the overlapped executor pipelines, quantified for the
/// execution planner (see [`Schedule::overlap_sites`]). These are the
/// analytic cost-model inputs `esti-runtime`'s planner feeds the
/// `esti-netsim` pipeline formulas; deriving them from the symbolic
/// schedule keeps the planner and the static analyzer reading one shared
/// description of what the engine does.
#[derive(Debug, Clone, Copy)]
pub struct OverlapSite {
    /// Schedule step label.
    pub label: &'static str,
    /// The collective's algebra rewrite.
    pub op: SymOp,
    /// Size of the mesh-axis group the collective spans.
    pub group: usize,
    /// Per-chip wire bytes (Appendix A.1 conventions; 2 B/element dense,
    /// quantized closed form for int8 weight gathers).
    pub bytes: f64,
    /// The extent [`Schedule::with_overlap_chunks`] divides — candidate
    /// chunk counts are its divisors (see [`effective_chunks`]).
    pub extent: usize,
    /// Per-chip FLOPs of the einsums the runtime fuses into this loop
    /// (producers of a reduction's partial sums; consumers of a gather's
    /// output).
    pub fused_flops: f64,
    /// True for per-layer steps (executed `n_layers` times), false for the
    /// post-stack final steps.
    pub per_layer: bool,
}

/// Per-chip FLOPs of one einsum step: `2 · |local output| · |local
/// contracted extent|`. Zero for non-einsum steps or indivisible shards.
fn einsum_flops(step: &Step, torus: TorusShape) -> f64 {
    let Step::Einsum { x, contract, output, .. } = step else { return 0.0 };
    let Ok(out) = output.local_elements(torus) else { return 0.0 };
    let Ok(xs) = x.local_shape(torus) else { return 0.0 };
    let mut k = 1.0;
    for c in contract {
        if let Some(ix) = x.dim_index(*c) {
            k *= xs[ix] as f64;
        }
    }
    2.0 * out as f64 * k
}

/// FLOPs of the einsums the runtime fuses into the collective at index
/// `at` of `steps`: for a reduction (all-reduce / reduce-scatter), the
/// partial-sum producers since the previous collective — the runtime
/// computes those products chunk by chunk to feed the pipeline; for an
/// all-gather, the consumers of the gathered tensor before the next
/// collective — the runtime contracts each arriving slice on the spot.
/// Consumers are matched structurally (equal sharding and global shape),
/// which deliberately sees through shape-preserving local ops like the
/// layernorm between a gather and its projections.
fn fused_flops_at(steps: &[Step], at: usize, torus: TorusShape) -> f64 {
    let Step::Collective { op, output: gathered, .. } = &steps[at] else {
        return 0.0;
    };
    match op {
        SymOp::AllReduce | SymOp::ReduceScatter { .. } => steps[..at]
            .iter()
            .rev()
            .take_while(|s| !matches!(s, Step::Collective { .. }))
            .filter(|s| {
                matches!(s, Step::Einsum { output, .. } if !output.spec.partial_sum().is_empty())
            })
            .map(|s| einsum_flops(s, torus))
            .sum(),
        SymOp::AllGather { .. } => steps[at + 1..]
            .iter()
            .take_while(|s| !matches!(s, Step::Collective { .. }))
            .filter(|s| matches!(s, Step::Einsum { x, w, .. } if x == gathered || w == gathered))
            .map(|s| einsum_flops(s, torus))
            .sum(),
        SymOp::AllToAll { .. } => 0.0,
    }
}

/// Labels of the collectives the overlapped executor pipelines, per
/// dataflow. Must stay in lockstep with `esti-runtime`'s engine: a label
/// listed here is chunked by the runtime whenever its extent divides, and
/// nothing else is.
fn overlap_chunkable(flow: Flow, label: &str) -> bool {
    // 1D weight-stationary: the output-side all-reduces around the
    // attention and FFN blocks (Section 3.4's weight-stationary overlap).
    const ONE_D: [&str; 3] = ["attn all-reduce", "mlp all-reduce", "block all-reduce"];
    // 2D weight-stationary: the activation all-gathers feeding the
    // projections and the reduce-scatters draining them (yz axis, where
    // the big volumes move).
    const TWO_D: [&str; 5] = [
        "acts all-gather (yz)",
        "mlp acts all-gather (yz)",
        "attn reduce-scatter (yz)",
        "mlp reduce-scatter (yz)",
        "block reduce-scatter (yz)",
    ];
    // Fully weight-gathered: the per-layer weight all-gathers overlap with
    // the matmuls that consume them (Section 3.2.3).
    const WG: [&str; 7] = [
        "wq weight all-gather",
        "wk weight all-gather",
        "wv weight all-gather",
        "wo weight all-gather",
        "w_in weight all-gather",
        "w_gate weight all-gather",
        "w_out weight all-gather",
    ];
    match flow {
        Flow::OneD => ONE_D.contains(&label),
        Flow::TwoD => TWO_D.contains(&label),
        Flow::WgFull => WG.contains(&label),
        // Hybrid keeps its weight gathers monolithic (they span only the
        // small gather axes) and overlaps the 1D-style all-reduces.
        Flow::WgHybrid { .. } => ONE_D.contains(&label),
    }
}

/// Largest divisor of `extent` that is at most `want` — the chunk count the
/// runtime actually uses when asked to pipeline a collective of the given
/// chunkable extent in `want` chunks. Degenerate extents (0 or 1) and
/// `want <= 1` give 1 (monolithic).
#[must_use]
pub fn effective_chunks(extent: usize, want: usize) -> usize {
    if extent <= 1 || want <= 1 {
        return 1;
    }
    (1..=want.min(extent))
        .rev()
        .find(|&c| extent.is_multiple_of(c))
        .unwrap_or(1)
}

/// Walk a step list, verifying each step against the available tensors and
/// the rewrite rules. Returns the last step's output (if any steps exist).
fn walk_steps(
    steps: &[Step],
    avail: &mut Vec<SymTensor>,
    torus: TorusShape,
) -> Result<Option<SymTensor>, String> {
    let mut last: Option<SymTensor> = None;
    for step in steps {
        let label = step.label();
        match step {
            Step::Collective { op, axes, input, output, .. } => {
                require_avail(avail, input, label)?;
                let expect = apply_op(*op, *axes, input).map_err(|e| format!("{label}: {e}"))?;
                if expect != *output {
                    return Err(format!(
                        "{label}: declared output {output} but {op} over {axes} yields {expect}"
                    ));
                }
            }
            Step::Einsum { x, w, contract, output, .. } => {
                require_avail(avail, x, label)?;
                require_avail(avail, w, label)?;
                let names: String = output.spec.dims().iter().map(|d| d.name).collect();
                let expect = expected_einsum(x, w, contract, &names)
                    .map_err(|e| format!("{label}: {e}"))?;
                if expect != *output {
                    return Err(format!(
                        "{label}: declared output {output} but einsum yields {expect}"
                    ));
                }
            }
            Step::Local { needs_full, inputs, output, .. } => {
                let mut in_partial = AxisSet::empty();
                for input in inputs {
                    require_avail(avail, input, label)?;
                    if *needs_full && !input.spec.partial_sum().is_empty() {
                        return Err(format!(
                            "{label}: nonlinear local op consumes unresolved partial sum {input}"
                        ));
                    }
                    in_partial = in_partial.union(input.spec.partial_sum());
                }
                if !in_partial.is_subset_of(output.spec.partial_sum()) {
                    return Err(format!(
                        "{label}: local op silently resolves partial sum over {in_partial}"
                    ));
                }
                // A local op may slice (add axes) but never materialize data
                // the chip does not hold (remove axes) from a same-sized
                // input dimension.
                for input in inputs {
                    for d in output.spec.dims() {
                        if let (Some(in_axes), Some(in_g)) =
                            (input.axes_of(d.name), input.global_of(d.name))
                        {
                            if !in_axes.is_subset_of(d.axes)
                                && Some(in_g) == output.global_of(d.name)
                            {
                                return Err(format!(
                                    "{label}: local op materializes dimension {} ({} -> {}) without a collective",
                                    d.name, in_axes, d.axes
                                ));
                            }
                        }
                    }
                }
            }
        }
        step.output()
            .check(torus)
            .map_err(|e| format!("{label}: output {e}"))?;
        avail.push(step.output().clone());
        last = Some(step.output().clone());
    }
    Ok(last)
}

fn require_avail(avail: &[SymTensor], t: &SymTensor, label: &str) -> Result<(), String> {
    if avail.contains(t) {
        Ok(())
    } else {
        Err(format!("{label}: input {t} is not available on-chip at this point"))
    }
}

/// Internal dataflow family, mirroring the runtime's private `Dataflow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    OneD,
    TwoD,
    WgFull,
    WgHybrid { gather: AxisSet, local: AxisSet },
}

fn flow_of(layout: &Layout) -> Flow {
    match layout.ffn {
        FfnLayout::WeightStationary1D => Flow::OneD,
        FfnLayout::WeightStationary2D => Flow::TwoD,
        FfnLayout::WeightGathered(extent) => {
            if extent.n_gather(layout.mesh) >= layout.mesh.n_chips() {
                Flow::WgFull
            } else {
                let gather = match extent {
                    GatherExtent::X => AxisSet::single(Axis::X),
                    GatherExtent::Xy => AxisSet::of(&[Axis::X, Axis::Y]),
                    GatherExtent::Xyz => AxisSet::all(),
                };
                Flow::WgHybrid { gather, local: AxisSet::all().without(gather) }
            }
        }
    }
}

/// Error-returning schedule builder state.
struct Plan {
    torus: TorusShape,
    steps: Vec<Step>,
    weights: Vec<SymTensor>,
}

impl Plan {
    fn collective(
        &mut self,
        label: &'static str,
        op: SymOp,
        axes: AxisSet,
        input: &SymTensor,
    ) -> Result<SymTensor, String> {
        let output = apply_op(op, axes, input).map_err(|e| format!("{label}: {e}"))?;
        output
            .check(self.torus)
            .map_err(|e| format!("{label}: output {e}"))?;
        self.steps.push(Step::Collective {
            label,
            op,
            axes,
            input: input.clone(),
            output: output.clone(),
            chunks: 1,
            wire: WireFormat::Dense,
        });
        Ok(output)
    }

    fn einsum(
        &mut self,
        label: &'static str,
        x: &SymTensor,
        w: &SymTensor,
        contract: &[char],
        out_names: &str,
    ) -> Result<SymTensor, String> {
        let output =
            expected_einsum(x, w, contract, out_names).map_err(|e| format!("{label}: {e}"))?;
        output
            .check(self.torus)
            .map_err(|e| format!("{label}: output {e}"))?;
        self.steps.push(Step::Einsum {
            label,
            x: x.clone(),
            w: w.clone(),
            contract: contract.to_vec(),
            output: output.clone(),
        });
        Ok(output)
    }

    fn local(
        &mut self,
        label: &'static str,
        needs_full: bool,
        inputs: &[&SymTensor],
        output: SymTensor,
    ) -> Result<SymTensor, String> {
        output
            .check(self.torus)
            .map_err(|e| format!("{label}: output {e}"))?;
        self.steps.push(Step::Local {
            label,
            needs_full,
            inputs: inputs.iter().map(|t| (*t).clone()).collect(),
            output: output.clone(),
        });
        Ok(output)
    }

    fn weight(&mut self, w: SymTensor) -> Result<SymTensor, String> {
        w.check(self.torus).map_err(|e| format!("weight {w}: {e}"))?;
        self.weights.push(w.clone());
        Ok(w)
    }

    fn take(&mut self) -> Vec<Step> {
        std::mem::take(&mut self.steps)
    }
}

/// Build the symbolic schedule for `layout` applied to `cfg`, with the
/// given global batch size and sequence length, over the layout's logical
/// mesh.
///
/// Returns `Err` when the plan is invalid: an indivisible shard, an illegal
/// collective, or an unsupported combination (batch-sharded attention
/// without multiquery).
pub fn build_schedule(
    cfg: &ModelConfig,
    layout: &Layout,
    batch: usize,
    seq: usize,
) -> Result<Schedule, String> {
    if layout.attn == AttnSharding::Batch && cfg.n_kv_heads() != 1 {
        return Err(
            "batch-sharded attention requires multiquery attention (Section 3.3)".to_string(),
        );
    }
    match flow_of(layout) {
        Flow::OneD => build_1d(cfg, layout, batch, seq, AxisSet::all(), AxisSet::empty()),
        Flow::WgHybrid { gather, local } => build_1d(cfg, layout, batch, seq, local, gather),
        Flow::TwoD => build_2d(cfg, layout, batch, seq),
        Flow::WgFull => build_wg_full(cfg, layout, batch, seq),
    }
}

fn logical_torus(layout: &Layout) -> TorusShape {
    TorusShape::new(layout.mesh.x, layout.mesh.y, layout.mesh.z)
}

#[allow(clippy::too_many_lines)]
fn build_1d(
    cfg: &ModelConfig,
    layout: &Layout,
    batch: usize,
    seq: usize,
    local_axes: AxisSet,
    gather_axes: AxisSet,
) -> Result<Schedule, String> {
    let torus = logical_torus(layout);
    let hybrid = !gather_axes.is_empty();
    let e = cfg.d_model;
    let f = cfg.d_ff;
    let h = cfg.n_heads;
    let d = cfg.d_head;
    let vocab = cfg.vocab;
    let multiquery = cfg.n_kv_heads() == 1;
    let batch_attn = layout.attn == AttnSharding::Batch;
    let serial = cfg.block == BlockKind::Serial;
    let gated = cfg.mlp == MlpKind::SwiGlu;

    let mut p = Plan { torus, steps: Vec::new(), weights: Vec::new() };

    // Residual stream: replicated in pure 1D; batch-sharded over the gather
    // axes in the hybrid weight-gathered flow (each gather group owns a
    // batch slice).
    let x = if hybrid {
        SymTensor::new("BLE", &[batch, seq, e]).shard('B', gather_axes)
    } else {
        SymTensor::new("BLE", &[batch, seq, e])
    };

    // Stored weights: head/ffn dims sharded over ALL axes; in the hybrid
    // flow they are all-gathered over `gather_axes` each layer down to the
    // local axes before use.
    let all = AxisSet::all();
    let wq_stored = p.weight(SymTensor::new("EHD", &[e, h, d]).shard('H', all))?;
    let (wk_stored, wv_stored) = if multiquery {
        (
            p.weight(SymTensor::new("ED", &[e, d]))?,
            p.weight(SymTensor::new("ED", &[e, d]))?,
        )
    } else {
        (
            p.weight(SymTensor::new("EHD", &[e, h, d]).shard('H', all))?,
            p.weight(SymTensor::new("EHD", &[e, h, d]).shard('H', all))?,
        )
    };
    let wo_stored = p.weight(SymTensor::new("HDE", &[h, d, e]).shard('H', all))?;
    let w_in_stored = p.weight(SymTensor::new("EF", &[e, f]).shard('F', all))?;
    let w_gate_stored = if gated {
        Some(p.weight(SymTensor::new("EF", &[e, f]).shard('F', all))?)
    } else {
        None
    };
    let w_out_stored = p.weight(SymTensor::new("FE", &[f, e]).shard('F', all))?;

    // Hybrid: all-gather weights over the gather axes at layer entry.
    let (wq, wk, wv, wo, w_in, w_gate, w_out) = if hybrid {
        let wq = p.collective(
            "wq weight all-gather",
            SymOp::AllGather { dim: 'H' },
            gather_axes,
            &wq_stored,
        )?;
        let (wk, wv) = if multiquery {
            (wk_stored.clone(), wv_stored.clone())
        } else {
            (
                p.collective(
                    "wk weight all-gather",
                    SymOp::AllGather { dim: 'H' },
                    gather_axes,
                    &wk_stored,
                )?,
                p.collective(
                    "wv weight all-gather",
                    SymOp::AllGather { dim: 'H' },
                    gather_axes,
                    &wv_stored,
                )?,
            )
        };
        let wo = p.collective(
            "wo weight all-gather",
            SymOp::AllGather { dim: 'H' },
            gather_axes,
            &wo_stored,
        )?;
        let w_in = p.collective(
            "w_in weight all-gather",
            SymOp::AllGather { dim: 'F' },
            gather_axes,
            &w_in_stored,
        )?;
        let w_gate = match &w_gate_stored {
            Some(wg) => Some(p.collective(
                "w_gate weight all-gather",
                SymOp::AllGather { dim: 'F' },
                gather_axes,
                wg,
            )?),
            None => None,
        };
        let w_out = p.collective(
            "w_out weight all-gather",
            SymOp::AllGather { dim: 'F' },
            gather_axes,
            &w_out_stored,
        )?;
        (wq, wk, wv, wo, w_in, w_gate, w_out)
    } else {
        (
            wq_stored,
            wk_stored,
            wv_stored,
            wo_stored,
            w_in_stored,
            w_gate_stored,
            w_out_stored,
        )
    };

    // ---- Attention sub-block ----
    let b_axes = x.axes_of('B').unwrap_or_else(AxisSet::empty);
    let ln1 = p.local("attn layernorm", true, &[&x], x.clone())?;

    let q = p.einsum("wq einsum", &ln1, &wq, &['E'], "BLHD")?;
    let (k, v) = if multiquery {
        (
            p.einsum("wk einsum", &ln1, &wk, &['E'], "BLD")?,
            p.einsum("wv einsum", &ln1, &wv, &['E'], "BLD")?,
        )
    } else {
        (
            p.einsum("wk einsum", &ln1, &wk, &['E'], "BLHD")?,
            p.einsum("wv einsum", &ln1, &wv, &['E'], "BLHD")?,
        )
    };

    let attn_out = if batch_attn {
        // Multiquery, batch-sharded attention: all-to-all q from
        // head-sharded to batch-sharded, slice k/v locally, run attention,
        // all-to-all back (Section 3.3).
        let q_b = p.collective(
            "attn qkv all-to-all",
            SymOp::AllToAll { split: 'B', concat: 'H' },
            local_axes,
            &q,
        )?;
        let full_b = b_axes.union(local_axes);
        let k_b = p.local(
            "k batch slice",
            false,
            &[&k],
            SymTensor::new("BLD", &[batch, seq, d]).shard('B', full_b),
        )?;
        let v_b = p.local(
            "v batch slice",
            false,
            &[&v],
            SymTensor::new("BLD", &[batch, seq, d]).shard('B', full_b),
        )?;
        let attn_b = p.local("attention", true, &[&q_b, &k_b, &v_b], q_b.clone())?;
        p.collective(
            "attn out all-to-all",
            SymOp::AllToAll { split: 'H', concat: 'B' },
            local_axes,
            &attn_b,
        )?
    } else {
        p.local("attention", true, &[&q, &k, &v], q.clone())?
    };

    let a_part = p.einsum("wo einsum", &attn_out, &wo, &['H', 'D'], "BLE")?;

    // ---- MLP sub-block ----
    let ln2_src = if serial {
        // Serial block: attention output is reduced and added to the
        // residual before the MLP runs.
        let a_full = p.collective("attn all-reduce", SymOp::AllReduce, local_axes, &a_part)?;
        let x_mid = p.local("attn residual add", false, &[&x, &a_full], x.clone())?;
        p.local("mlp layernorm", true, &[&x_mid], x_mid.clone())?
    } else {
        ln1.clone()
    };

    let up = p.einsum("w_in einsum", &ln2_src, &w_in, &['E'], "BLF")?;
    let act = if let Some(wg) = &w_gate {
        let gate = p.einsum("w_gate einsum", &ln2_src, wg, &['E'], "BLF")?;
        p.local("swiglu", true, &[&up, &gate], up.clone())?
    } else {
        p.local("nonlinearity", true, &[&up], up.clone())?
    };
    let m_part = p.einsum("w_out einsum", &act, &w_out, &['F'], "BLE")?;

    // ---- Combine + residual ----
    if serial {
        let m_full = p.collective("mlp all-reduce", SymOp::AllReduce, local_axes, &m_part)?;
        p.local("mlp residual add", false, &[&ln2_src, &m_full], x.clone())?;
    } else {
        let sum = p.local("attn+mlp add", false, &[&a_part, &m_part], m_part.clone())?;
        let full = p.collective("block all-reduce", SymOp::AllReduce, local_axes, &sum)?;
        p.local("residual add", false, &[&x, &full], x.clone())?;
    }
    let layer = p.take();
    let weights = std::mem::take(&mut p.weights);

    // ---- Final layernorm + logits ----
    let embed_t = SymTensor::new("EV", &[e, vocab]);
    p.weights.push(embed_t.clone());
    let xn = p.local("final layernorm", true, &[&x], x.clone())?;
    p.einsum("logits einsum", &xn, &embed_t, &['E'], "BLV")?;
    let final_steps = p.take();
    let final_weights = std::mem::take(&mut p.weights);

    Ok(Schedule {
        layout: *layout,
        torus,
        batch,
        seq,
        boundary: x,
        weights,
        layer,
        final_weights,
        final_steps,
    })
}

#[allow(clippy::too_many_lines)]
fn build_2d(
    cfg: &ModelConfig,
    layout: &Layout,
    batch: usize,
    seq: usize,
) -> Result<Schedule, String> {
    let torus = logical_torus(layout);
    let e = cfg.d_model;
    let f = cfg.d_ff;
    let h = cfg.n_heads;
    let d = cfg.d_head;
    let vocab = cfg.vocab;
    let multiquery = cfg.n_kv_heads() == 1;
    let batch_attn = layout.attn == AttnSharding::Batch;
    let serial = cfg.block == BlockKind::Serial;
    let gated = cfg.mlp == MlpKind::SwiGlu;

    let ax = AxisSet::single(Axis::X);
    let ayz = AxisSet::of(&[Axis::Y, Axis::Z]);
    let all = AxisSet::all();

    let mut p = Plan { torus, steps: Vec::new(), weights: Vec::new() };

    // Residual stream: d_model sharded over the full mesh (E_xyz).
    let x = SymTensor::new("BLE", &[batch, seq, e]).shard('E', all);

    let wq = p.weight(SymTensor::new("EHD", &[e, h, d]).shard('E', ax).shard('H', ayz))?;
    let (wk, wv) = if multiquery {
        (
            p.weight(SymTensor::new("ED", &[e, d]).shard('E', ax))?,
            p.weight(SymTensor::new("ED", &[e, d]).shard('E', ax))?,
        )
    } else {
        (
            p.weight(SymTensor::new("EHD", &[e, h, d]).shard('E', ax).shard('H', ayz))?,
            p.weight(SymTensor::new("EHD", &[e, h, d]).shard('E', ax).shard('H', ayz))?,
        )
    };
    let wo = p.weight(SymTensor::new("HDE", &[h, d, e]).shard('H', ayz).shard('E', ax))?;
    let w_in = p.weight(SymTensor::new("EF", &[e, f]).shard('E', ax).shard('F', ayz))?;
    let w_gate = if gated {
        Some(p.weight(SymTensor::new("EF", &[e, f]).shard('E', ax).shard('F', ayz))?)
    } else {
        None
    };
    let w_out = p.weight(SymTensor::new("FE", &[f, e]).shard('F', ayz).shard('E', ax))?;

    // Distributed layernorm over a sharded d_model: local moments, then an
    // all-reduce so every chip can normalize its slice (Section 3.2.2).
    fn layernorm(
        p: &mut Plan,
        src: &SymTensor,
        batch: usize,
        seq: usize,
        labels: [&'static str; 3],
    ) -> Result<SymTensor, String> {
        let moments = p.local(
            labels[0],
            false,
            &[src],
            SymTensor::new("BLM", &[batch, seq, 2]).partial(AxisSet::all()),
        )?;
        let moments_full = p.collective(labels[1], SymOp::AllReduce, AxisSet::all(), &moments)?;
        p.local(labels[2], true, &[src, &moments_full], src.clone())
    }

    // ---- Attention sub-block ----
    let xn = layernorm(
        &mut p,
        &x,
        batch,
        seq,
        ["attn moments", "attn moments all-reduce", "attn layernorm"],
    )?;
    // All-gather over yz gives each chip its x-slice of d_model (E_x).
    let x_i = p.collective("acts all-gather (yz)", SymOp::AllGather { dim: 'E' }, ayz, &xn)?;
    let q_part = p.einsum("wq einsum", &x_i, &wq, &['E'], "BLHD")?;
    let q = p.collective("q all-reduce (x)", SymOp::AllReduce, ax, &q_part)?;
    let kv_names = if multiquery { "BLD" } else { "BLHD" };
    let k_part = p.einsum("wk einsum", &x_i, &wk, &['E'], kv_names)?;
    let k = p.collective("k all-reduce (x)", SymOp::AllReduce, ax, &k_part)?;
    let v_part = p.einsum("wv einsum", &x_i, &wv, &['E'], kv_names)?;
    let v = p.collective("v all-reduce (x)", SymOp::AllReduce, ax, &v_part)?;

    let attn_out = if batch_attn {
        // q: B L H_yz D -> all-to-all over yz -> B_yz L H D, then slice the
        // local x-fraction of the batch, attend, and undo both moves.
        let q_b = p.collective(
            "attn qkv all-to-all (yz)",
            SymOp::AllToAll { split: 'B', concat: 'H' },
            ayz,
            &q,
        )?;
        let q_bi = p.local(
            "q batch slice (x)",
            false,
            &[&q_b],
            SymTensor::new("BLHD", &[batch, seq, h, d]).shard('B', all),
        )?;
        let k_b = p.local(
            "k batch slice",
            false,
            &[&k],
            SymTensor::new("BLD", &[batch, seq, d]).shard('B', all),
        )?;
        let v_b = p.local(
            "v batch slice",
            false,
            &[&v],
            SymTensor::new("BLD", &[batch, seq, d]).shard('B', all),
        )?;
        let attn_bi = p.local("attention", true, &[&q_bi, &k_b, &v_b], q_bi.clone())?;
        let attn_b = p.collective(
            "attn batch all-gather (x)",
            SymOp::AllGather { dim: 'B' },
            ax,
            &attn_bi,
        )?;
        p.collective(
            "attn out all-to-all (yz)",
            SymOp::AllToAll { split: 'H', concat: 'B' },
            ayz,
            &attn_b,
        )?
    } else {
        p.local("attention", true, &[&q, &k, &v], q.clone())?
    };

    let a_part = p.einsum("wo einsum", &attn_out, &wo, &['H', 'D'], "BLE")?;

    // ---- MLP sub-block ----
    let (x_mid, ln2) = if serial {
        let a_loc = p.collective(
            "attn reduce-scatter (yz)",
            SymOp::ReduceScatter { dim: 'E' },
            ayz,
            &a_part,
        )?;
        let x_mid = p.local("attn residual add", false, &[&x, &a_loc], x.clone())?;
        let ln2 = layernorm(
            &mut p,
            &x_mid,
            batch,
            seq,
            ["mlp moments", "mlp moments all-reduce", "mlp layernorm"],
        )?;
        let ln2_i = p.collective(
            "mlp acts all-gather (yz)",
            SymOp::AllGather { dim: 'E' },
            ayz,
            &ln2,
        )?;
        (Some(x_mid), ln2_i)
    } else {
        (None, x_i.clone())
    };

    let mut gate_sharded = None;
    if let Some(wg) = &w_gate {
        let gate_part = p.einsum("w_gate einsum", &ln2, wg, &['E'], "BLF")?;
        gate_sharded = Some(p.collective(
            "gate reduce-scatter (x)",
            SymOp::ReduceScatter { dim: 'F' },
            ax,
            &gate_part,
        )?);
    }
    let up_part = p.einsum("w_in einsum", &ln2, &w_in, &['E'], "BLF")?;
    let up_sharded = p.collective(
        "up reduce-scatter (x)",
        SymOp::ReduceScatter { dim: 'F' },
        ax,
        &up_part,
    )?;
    let act = if let Some(g) = &gate_sharded {
        p.local("swiglu", true, &[&up_sharded, g], up_sharded.clone())?
    } else {
        p.local("nonlinearity", true, &[&up_sharded], up_sharded.clone())?
    };
    let act_yz = p.collective("act all-gather (x)", SymOp::AllGather { dim: 'F' }, ax, &act)?;
    let m_part = p.einsum("w_out einsum", &act_yz, &w_out, &['F'], "BLE")?;

    // ---- Combine + residual ----
    if serial {
        let m_loc = p.collective(
            "mlp reduce-scatter (yz)",
            SymOp::ReduceScatter { dim: 'E' },
            ayz,
            &m_part,
        )?;
        let x_mid = x_mid.expect("serial block always has a mid residual");
        p.local("mlp residual add", false, &[&x_mid, &m_loc], x.clone())?;
    } else {
        let sum = p.local("attn+mlp add", false, &[&a_part, &m_part], m_part.clone())?;
        let loc = p.collective(
            "block reduce-scatter (yz)",
            SymOp::ReduceScatter { dim: 'E' },
            ayz,
            &sum,
        )?;
        p.local("residual add", false, &[&x, &loc], x.clone())?;
    }
    let layer = p.take();
    let weights = std::mem::take(&mut p.weights);

    // ---- Final layernorm + logits ----
    // The transposed embedding is sharded E_xyz on the contraction dim, so
    // the logits come out as a partial sum over the whole mesh.
    let embed_t = SymTensor::new("EV", &[e, vocab]).shard('E', all);
    p.weights.push(embed_t.clone());
    let xn = layernorm(
        &mut p,
        &x,
        batch,
        seq,
        ["final moments", "final moments all-reduce", "final layernorm"],
    )?;
    let logits_part = p.einsum("logits einsum", &xn, &embed_t, &['E'], "BLV")?;
    p.collective("logits all-reduce", SymOp::AllReduce, all, &logits_part)?;
    let final_steps = p.take();
    let final_weights = std::mem::take(&mut p.weights);

    Ok(Schedule {
        layout: *layout,
        torus,
        batch,
        seq,
        boundary: x,
        weights,
        layer,
        final_weights,
        final_steps,
    })
}

#[allow(clippy::too_many_lines)]
fn build_wg_full(
    cfg: &ModelConfig,
    layout: &Layout,
    batch: usize,
    seq: usize,
) -> Result<Schedule, String> {
    let torus = logical_torus(layout);
    let e = cfg.d_model;
    let f = cfg.d_ff;
    let h = cfg.n_heads;
    let d = cfg.d_head;
    let vocab = cfg.vocab;
    let multiquery = cfg.n_kv_heads() == 1;
    let serial = cfg.block == BlockKind::Serial;
    let gated = cfg.mlp == MlpKind::SwiGlu;
    let all = AxisSet::all();

    let mut p = Plan { torus, steps: Vec::new(), weights: Vec::new() };

    // Fully weight-gathered: activations batch-sharded over the whole mesh,
    // weights gathered from their stored sharding each layer.
    let x = SymTensor::new("BLE", &[batch, seq, e]).shard('B', all);

    let wq_stored = p.weight(SymTensor::new("EHD", &[e, h, d]).shard('H', all))?;
    let (wk_stored, wv_stored) = if multiquery {
        (
            p.weight(SymTensor::new("ED", &[e, d]))?,
            p.weight(SymTensor::new("ED", &[e, d]))?,
        )
    } else {
        (
            p.weight(SymTensor::new("EHD", &[e, h, d]).shard('H', all))?,
            p.weight(SymTensor::new("EHD", &[e, h, d]).shard('H', all))?,
        )
    };
    let wo_stored = p.weight(SymTensor::new("HDE", &[h, d, e]).shard('H', all))?;
    let w_in_stored = p.weight(SymTensor::new("EF", &[e, f]).shard('F', all))?;
    let w_gate_stored = if gated {
        Some(p.weight(SymTensor::new("EF", &[e, f]).shard('F', all))?)
    } else {
        None
    };
    let w_out_stored = p.weight(SymTensor::new("FE", &[f, e]).shard('F', all))?;

    let wq = p.collective(
        "wq weight all-gather",
        SymOp::AllGather { dim: 'H' },
        all,
        &wq_stored,
    )?;
    let (wk, wv) = if multiquery {
        (wk_stored.clone(), wv_stored.clone())
    } else {
        (
            p.collective(
                "wk weight all-gather",
                SymOp::AllGather { dim: 'H' },
                all,
                &wk_stored,
            )?,
            p.collective(
                "wv weight all-gather",
                SymOp::AllGather { dim: 'H' },
                all,
                &wv_stored,
            )?,
        )
    };
    let wo = p.collective(
        "wo weight all-gather",
        SymOp::AllGather { dim: 'H' },
        all,
        &wo_stored,
    )?;
    let w_in = p.collective(
        "w_in weight all-gather",
        SymOp::AllGather { dim: 'F' },
        all,
        &w_in_stored,
    )?;
    let w_gate = match &w_gate_stored {
        Some(wg) => Some(p.collective(
            "w_gate weight all-gather",
            SymOp::AllGather { dim: 'F' },
            all,
            wg,
        )?),
        None => None,
    };
    let w_out = p.collective(
        "w_out weight all-gather",
        SymOp::AllGather { dim: 'F' },
        all,
        &w_out_stored,
    )?;

    // With full weights on chip the whole layer is local over the batch
    // slice — no activation collectives at all (Section 3.2.3).
    let ln1 = p.local("attn layernorm", true, &[&x], x.clone())?;
    let q = p.einsum("wq einsum", &ln1, &wq, &['E'], "BLHD")?;
    let kv_names = if multiquery { "BLD" } else { "BLHD" };
    let k = p.einsum("wk einsum", &ln1, &wk, &['E'], kv_names)?;
    let v = p.einsum("wv einsum", &ln1, &wv, &['E'], kv_names)?;
    let attn_out = p.local("attention", true, &[&q, &k, &v], q.clone())?;
    let a_full = p.einsum("wo einsum", &attn_out, &wo, &['H', 'D'], "BLE")?;

    let ln2_src = if serial {
        let x_mid = p.local("attn residual add", false, &[&x, &a_full], x.clone())?;
        p.local("mlp layernorm", true, &[&x_mid], x_mid.clone())?
    } else {
        ln1.clone()
    };
    let up = p.einsum("w_in einsum", &ln2_src, &w_in, &['E'], "BLF")?;
    let act = if let Some(wg) = &w_gate {
        let gate = p.einsum("w_gate einsum", &ln2_src, wg, &['E'], "BLF")?;
        p.local("swiglu", true, &[&up, &gate], up.clone())?
    } else {
        p.local("nonlinearity", true, &[&up], up.clone())?
    };
    let m_full = p.einsum("w_out einsum", &act, &w_out, &['F'], "BLE")?;

    if serial {
        p.local("mlp residual add", false, &[&ln2_src, &m_full], x.clone())?;
    } else {
        let sum = p.local("attn+mlp add", false, &[&a_full, &m_full], m_full.clone())?;
        p.local("residual add", false, &[&x, &sum], x.clone())?;
    }
    let layer = p.take();
    let weights = std::mem::take(&mut p.weights);

    // ---- Final layernorm + logits, then gather the batch shards ----
    let embed_t = SymTensor::new("EV", &[e, vocab]);
    p.weights.push(embed_t.clone());
    let xn = p.local("final layernorm", true, &[&x], x.clone())?;
    let logits_loc = p.einsum("logits einsum", &xn, &embed_t, &['E'], "BLV")?;
    p.collective(
        "logits batch all-gather",
        SymOp::AllGather { dim: 'B' },
        all,
        &logits_loc,
    )?;
    let final_steps = p.take();
    let final_weights = std::mem::take(&mut p.weights);

    Ok(Schedule {
        layout: *layout,
        torus,
        batch,
        seq,
        boundary: x,
        weights,
        layer,
        final_weights,
        final_steps,
    })
}

/// Build and verify the schedule for `layout` with the smallest batch the
/// runtime itself would accept (`batch = n_chips`, `seq = 1`): any
/// divisibility failure reported here is a property of the plan, not of a
/// particular request size.
pub fn preflight(cfg: &ModelConfig, layout: &Layout) -> Result<(), String> {
    let schedule = build_schedule(cfg, layout, layout.mesh.n_chips(), 1)?;
    schedule.verify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MeshFactors;

    fn layouts_for(mesh: MeshFactors) -> Vec<Layout> {
        let mut out = Vec::new();
        for ffn in [
            FfnLayout::WeightStationary1D,
            FfnLayout::WeightStationary2D,
            FfnLayout::WeightGathered(GatherExtent::X),
            FfnLayout::WeightGathered(GatherExtent::Xy),
            FfnLayout::WeightGathered(GatherExtent::Xyz),
        ] {
            for attn in [AttnSharding::Head, AttnSharding::Batch] {
                out.push(Layout { ffn, attn, mesh });
            }
        }
        out
    }

    #[test]
    fn tiny_model_all_layouts_verify() {
        let cfg = ModelConfig::tiny();
        for layout in layouts_for(MeshFactors::new(2, 2, 1)) {
            let s = build_schedule(&cfg, &layout, 16, 4)
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", layout.describe()));
            s.verify()
                .unwrap_or_else(|e| panic!("{}: verify failed: {e}", layout.describe()));
        }
    }

    #[test]
    fn tiny_multihead_all_layouts_verify() {
        let cfg = ModelConfig::tiny_multihead();
        for layout in layouts_for(MeshFactors::new(2, 2, 1)) {
            if layout.attn == AttnSharding::Batch {
                // Batch-sharded attention requires multiquery.
                let err = build_schedule(&cfg, &layout, 16, 4).unwrap_err();
                assert!(err.contains("multiquery"), "unexpected error: {err}");
                continue;
            }
            let s = build_schedule(&cfg, &layout, 16, 4)
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", layout.describe()));
            s.verify()
                .unwrap_or_else(|e| panic!("{}: verify failed: {e}", layout.describe()));
        }
    }

    #[test]
    fn indivisible_heads_reported() {
        // 48 heads over a 64-chip mesh: 1D weight-stationary cannot shard.
        let cfg = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 4, 4),
        };
        let err = preflight(&cfg, &layout).unwrap_err();
        assert!(err.contains("divisible"), "unexpected error: {err}");
    }

    #[test]
    fn tampered_step_caught() {
        let cfg = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let mut s = build_schedule(&cfg, &layout, 16, 4).unwrap();
        // Tamper: claim the wo einsum output is replicated (drops the
        // partial-sum marker without a reduce).
        let pos = s
            .layer
            .iter()
            .position(|st| st.label() == "wo einsum")
            .expect("wo einsum present");
        if let Step::Einsum { output, .. } = &mut s.layer[pos] {
            output.spec = ShardingSpec::new("BLE");
        }
        let err = s.verify().unwrap_err();
        assert!(
            err.contains("wo einsum"),
            "error should name the tampered step: {err}"
        );
    }

    #[test]
    fn missing_reduce_caught() {
        // Removing the all-reduce from the 1D layer leaves a partial sum
        // flowing toward the residual add.
        let cfg = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let mut s = build_schedule(&cfg, &layout, 16, 4).unwrap();
        let partial_in = s
            .layer
            .iter()
            .find_map(|st| match st {
                Step::Collective { label, input, .. } if *label == "block all-reduce" => {
                    Some(input.clone())
                }
                _ => None,
            })
            .expect("block all-reduce present");
        s.layer.retain(|st| st.label() != "block all-reduce");
        for st in &mut s.layer {
            if let Step::Local { label, inputs, .. } = st {
                if *label == "residual add" {
                    inputs[1] = partial_in.clone();
                }
            }
        }
        let err = s.verify().unwrap_err();
        assert!(err.contains("partial"), "unexpected error: {err}");
    }

    #[test]
    fn apply_op_rules() {
        let torus = TorusShape::new(2, 2, 1);
        let all = AxisSet::all();
        let ax = AxisSet::single(Axis::X);

        // all-gather removes axes.
        let t = SymTensor::new("BLE", &[8, 2, 32]).shard('E', all);
        let g = apply_op(SymOp::AllGather { dim: 'E' }, all, &t).unwrap();
        assert!(g.spec.axes_of('E').is_empty());
        assert!(g.check(torus).is_ok());

        // all-gather over axes the dim is not sharded on fails.
        let t2 = SymTensor::new("BLE", &[8, 2, 32]).shard('E', ax);
        assert!(apply_op(SymOp::AllGather { dim: 'E' }, all, &t2).is_err());

        // reduce-scatter requires a partial sum.
        let t3 = SymTensor::new("BLE", &[8, 2, 32]);
        assert!(apply_op(SymOp::ReduceScatter { dim: 'E' }, all, &t3).is_err());
        let t4 = t3.clone().partial(all);
        let rs = apply_op(SymOp::ReduceScatter { dim: 'E' }, all, &t4).unwrap();
        assert_eq!(rs.spec.axes_of('E'), all);
        assert!(rs.spec.partial_sum().is_empty());

        // all-reduce clears the marker without sharding anything.
        let ar = apply_op(SymOp::AllReduce, all, &t4).unwrap();
        assert!(ar.spec.partial_sum().is_empty());
        assert!(ar.spec.axes_of('E').is_empty());

        // all-to-all moves axes between dims.
        let t5 = SymTensor::new("BLHD", &[8, 2, 4, 8]).shard('H', all);
        let a2a = apply_op(SymOp::AllToAll { split: 'B', concat: 'H' }, all, &t5).unwrap();
        assert_eq!(a2a.spec.axes_of('B'), all);
        assert!(a2a.spec.axes_of('H').is_empty());
    }

    #[test]
    fn einsum_partial_sum_propagation() {
        let all = AxisSet::all();
        let x = SymTensor::new("BLE", &[8, 2, 32]);
        let w = SymTensor::new("EF", &[32, 64]).shard('F', all);
        let out = expected_einsum(&x, &w, &['E'], "BLF").unwrap();
        assert_eq!(out.spec.axes_of('F'), all);
        assert!(out.spec.partial_sum().is_empty());

        // Contracting a sharded dim yields a partial sum.
        let w2 = SymTensor::new("FE", &[64, 32]).shard('F', all);
        let x2 = SymTensor::new("BLF", &[8, 2, 64]).shard('F', all);
        let out2 = expected_einsum(&x2, &w2, &['F'], "BLE").unwrap();
        assert_eq!(out2.spec.partial_sum(), all);

        // Mismatched contraction sharding is rejected.
        let x3 = SymTensor::new("BLF", &[8, 2, 64]);
        assert!(expected_einsum(&x3, &w2, &['F'], "BLE").is_err());
    }

    #[test]
    fn effective_chunks_largest_divisor() {
        assert_eq!(effective_chunks(16, 4), 4);
        assert_eq!(effective_chunks(6, 4), 3);
        assert_eq!(effective_chunks(7, 4), 1);
        assert_eq!(effective_chunks(8, 3), 2);
        assert_eq!(effective_chunks(12, 5), 4);
        assert_eq!(effective_chunks(1, 4), 1);
        assert_eq!(effective_chunks(0, 4), 1);
        assert_eq!(effective_chunks(16, 1), 1);
        assert_eq!(effective_chunks(16, 0), 1);
        assert_eq!(effective_chunks(3, 8), 3);
    }

    #[test]
    fn overlap_chunks_marked_per_flow_and_schedule_still_verifies() {
        let cfg = ModelConfig::tiny();
        for layout in layouts_for(MeshFactors::new(2, 2, 1)) {
            let s = build_schedule(&cfg, &layout, 16, 4).unwrap().with_overlap_chunks(4);
            s.verify()
                .unwrap_or_else(|e| panic!("{}: verify after chunking: {e}", layout.describe()));
            let flow = flow_of(&layout);
            let mut chunked = 0usize;
            for step in s.layer.iter().chain(&s.final_steps) {
                let Step::Collective { label, op, axes, input, chunks, .. } = step else {
                    continue;
                };
                if !overlap_chunkable(flow, label) {
                    assert_eq!(*chunks, 1, "{label}: unmarked collective must stay monolithic");
                    continue;
                }
                let shape = input.local_shape(s.torus).unwrap();
                let extent = match op {
                    SymOp::AllGather { dim } => shape[input.dim_index(*dim).unwrap()],
                    SymOp::ReduceScatter { dim } => {
                        shape[input.dim_index(*dim).unwrap()] / s.torus.group_size(*axes)
                    }
                    SymOp::AllReduce => *shape.last().unwrap(),
                    SymOp::AllToAll { .. } => unreachable!("all-to-all is never chunkable"),
                };
                assert_eq!(*chunks, effective_chunks(extent, 4), "{label}");
                if *chunks > 1 {
                    chunked += 1;
                }
            }
            assert!(
                chunked > 0,
                "{}: expected at least one pipelined collective",
                layout.describe()
            );
        }
    }

    #[test]
    fn weight_dtype_marks_exactly_the_weight_gathers() {
        let cfg = ModelConfig::tiny();
        for layout in layouts_for(MeshFactors::new(2, 2, 1)) {
            let s = build_schedule(&cfg, &layout, 16, 4)
                .unwrap()
                .with_overlap_chunks(4)
                .with_weight_dtype(DType::Int8);
            s.verify()
                .unwrap_or_else(|e| panic!("{}: verify after wire marking: {e}", layout.describe()));
            for step in s.layer.iter().chain(&s.final_steps) {
                let Step::Collective { label, op, wire, .. } = step else { continue };
                if label.ends_with("weight all-gather") {
                    assert!(matches!(op, SymOp::AllGather { .. }), "{label}");
                    assert_eq!(*wire, WireFormat::Int8, "{label}");
                } else {
                    assert_eq!(*wire, WireFormat::Dense, "{label}");
                }
            }
        }
        // Non-int8 dtypes leave every collective dense.
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let s = build_schedule(&cfg, &layout, 16, 4).unwrap().with_weight_dtype(DType::Bf16);
        for step in s.collectives() {
            if let Step::Collective { wire, .. } = step {
                assert_eq!(*wire, WireFormat::Dense);
            }
        }
    }

    #[test]
    fn overlap_chunks_want_one_is_identity() {
        let cfg = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let s = build_schedule(&cfg, &layout, 16, 4).unwrap().with_overlap_chunks(1);
        for step in s.collectives() {
            if let Step::Collective { chunks, .. } = step {
                assert_eq!(*chunks, 1);
            }
        }
    }

    #[test]
    fn schedule_collectives_nonempty() {
        let cfg = ModelConfig::tiny();
        for layout in layouts_for(MeshFactors::new(2, 2, 1)) {
            let s = build_schedule(&cfg, &layout, 16, 4).unwrap();
            assert!(
                !s.collectives().is_empty(),
                "{}: expected at least one collective",
                layout.describe()
            );
        }
    }
}
