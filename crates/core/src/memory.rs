//! Per-chip HBM accounting: weight shards and the KV cache.
//!
//! Section 2's "memory costs" and Table 1's max-context model. The KV cache
//! footprint per chip depends on the attention variant × sharding:
//!
//! * multihead, head-sharded: each chip stores `⌈H/n⌉` KV heads of every
//!   sequence (heads partially replicated once `n > H`, Section 3.3);
//! * multiquery, head-sharded ("baseline multiquery"): the single KV head
//!   is replicated on every chip — the memory savings are lost;
//! * multiquery, batch-sharded (the paper's optimized layout): each chip
//!   stores `⌈B/n⌉` sequences of the single KV head — an `n`-fold saving.

use esti_hal::DType;
use esti_model::ModelConfig;

use crate::layout::AttnSharding;
use crate::machine::Machine;

/// Fraction of HBM the paper reserves for the KV cache in Table 1.
pub const TABLE1_KV_FRACTION: f64 = 0.3;

/// KV heads stored per chip under a sharding.
#[must_use]
pub fn kv_heads_per_chip(model: &ModelConfig, sharding: AttnSharding, n_chips: usize) -> usize {
    match sharding {
        AttnSharding::Head => div_ceil(model.n_kv_heads(), n_chips).max(1),
        AttnSharding::Batch => model.n_kv_heads(),
    }
}

/// Sequences whose KV cache one chip stores under a sharding.
#[must_use]
pub fn kv_seqs_per_chip(sharding: AttnSharding, n_chips: usize, batch: usize) -> usize {
    match sharding {
        AttnSharding::Head => batch,
        AttnSharding::Batch => div_ceil(batch, n_chips),
    }
}

/// KV-cache bytes per chip for `batch` sequences of `context` tokens.
#[must_use]
pub fn kv_bytes_per_chip(
    model: &ModelConfig,
    sharding: AttnSharding,
    n_chips: usize,
    batch: usize,
    context: usize,
    dtype: DType,
) -> f64 {
    let heads = kv_heads_per_chip(model, sharding, n_chips) as f64;
    let seqs = kv_seqs_per_chip(sharding, n_chips, batch) as f64;
    2.0 * model.n_layers as f64
        * seqs
        * context as f64
        * heads
        * model.d_head as f64
        * dtype.bytes_f()
}

/// Weight bytes per chip (weights are always fully sharded over all chips).
#[must_use]
pub fn weight_bytes_per_chip(model: &ModelConfig, n_chips: usize, dtype: DType) -> f64 {
    model.weight_bytes(dtype) / n_chips as f64
}

/// Maximum context length that fits when `kv_budget_per_chip` bytes of HBM
/// are reserved for the KV cache (Table 1 uses 30% of 32 GiB).
#[must_use]
pub fn max_context_len(
    model: &ModelConfig,
    sharding: AttnSharding,
    n_chips: usize,
    batch: usize,
    kv_budget_per_chip: f64,
    dtype: DType,
) -> usize {
    let per_token = kv_bytes_per_chip(model, sharding, n_chips, batch, 1, dtype);
    (kv_budget_per_chip / per_token) as usize
}

/// Whether a configuration fits in HBM: weight shard + KV cache + a small
/// activation allowance must not exceed per-chip capacity.
#[must_use]
pub fn fits_in_memory(
    machine: &Machine,
    model: &ModelConfig,
    sharding: AttnSharding,
    batch: usize,
    context: usize,
    weight_dtype: DType,
    kv_dtype: DType,
) -> bool {
    let n = machine.n_chips();
    let weights = weight_bytes_per_chip(model, n, weight_dtype);
    let kv = kv_bytes_per_chip(model, sharding, n, batch, context, kv_dtype);
    // Activation working set: a few live [tokens, E] buffers per chip.
    let acts = 4.0 * batch as f64 * model.d_model as f64 * 2.0;
    weights + kv + acts <= machine.chip.hbm_capacity * 0.95
}

/// Transient working-set bytes of a weight-gathered layer: the gathered
/// weight copy (`W_layer · N / n` elements, double-buffered so the next
/// layer's gather can overlap the current einsum). Section 3.5 notes that
/// "some of the weight-gathered layouts would exhaust memory without these
/// optimizations" — this is the quantity that exhausts it.
#[must_use]
pub fn wg_working_set_bytes(
    model: &ModelConfig,
    n_gather: usize,
    n_chips: usize,
    dtype: DType,
) -> f64 {
    2.0 * model.params_per_layer() as f64 * n_gather as f64 / n_chips as f64 * dtype.bytes_f()
}

/// Whether a weight-gathered configuration fits including its transient
/// gathered-weights working set (stricter than [`fits_in_memory`]).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn wg_fits_in_memory(
    machine: &Machine,
    model: &ModelConfig,
    sharding: AttnSharding,
    n_gather: usize,
    batch: usize,
    context: usize,
    weight_dtype: DType,
    kv_dtype: DType,
) -> bool {
    let n = machine.n_chips();
    let weights = weight_bytes_per_chip(model, n, weight_dtype);
    let kv = kv_bytes_per_chip(model, sharding, n, batch, context, kv_dtype);
    let working = wg_working_set_bytes(model, n_gather, n, weight_dtype);
    let acts = 4.0 * batch as f64 * model.d_model as f64 * 2.0;
    weights + kv + working + acts <= machine.chip.hbm_capacity * 0.95
}

/// Table 1's rows: max context for the three attention variants of
/// PaLM 540B on 64 chips.
#[must_use]
pub fn table1_row(
    model: &ModelConfig,
    sharding: AttnSharding,
    machine: &Machine,
    batch: usize,
) -> usize {
    let budget = machine.chip.hbm_capacity * TABLE1_KV_FRACTION;
    max_context_len(model, sharding, machine.n_chips(), batch, budget, DType::Bf16)
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine64() -> Machine {
        Machine::tpu_v4_slice(64).unwrap()
    }

    #[test]
    fn table1_multihead_row() {
        // Paper: multihead (d_head 128), batch 128 -> 1320; batch 512 -> 330.
        let mh = ModelConfig::palm_540b_multihead();
        let m = machine64();
        let c128 = table1_row(&mh, AttnSharding::Head, &m, 128);
        let c512 = table1_row(&mh, AttnSharding::Head, &m, 512);
        assert!((c128 as f64 - 1320.0).abs() / 1320.0 < 0.05, "batch 128: {c128}");
        assert!((c512 as f64 - 330.0).abs() / 330.0 < 0.05, "batch 512: {c512}");
    }

    #[test]
    fn table1_baseline_multiquery_row() {
        // Paper: baseline multiquery (d_head 256), batch 128 -> 660.
        let mq = ModelConfig::palm_540b();
        let m = machine64();
        let c128 = table1_row(&mq, AttnSharding::Head, &m, 128);
        let c512 = table1_row(&mq, AttnSharding::Head, &m, 512);
        assert!((c128 as f64 - 660.0).abs() / 660.0 < 0.05, "batch 128: {c128}");
        assert!((c512 as f64 - 165.0).abs() / 165.0 < 0.06, "batch 512: {c512}");
    }

    #[test]
    fn table1_optimized_multiquery_row() {
        // Paper: optimized multiquery, batch 128 -> 43,000; batch 512 -> 10,700.
        let mq = ModelConfig::palm_540b();
        let m = machine64();
        let c128 = table1_row(&mq, AttnSharding::Batch, &m, 128);
        let c512 = table1_row(&mq, AttnSharding::Batch, &m, 512);
        assert!((c128 as f64 - 43_000.0).abs() / 43_000.0 < 0.05, "batch 128: {c128}");
        assert!((c512 as f64 - 10_700.0).abs() / 10_700.0 < 0.05, "batch 512: {c512}");
    }

    #[test]
    fn optimized_multiquery_is_32x_or_more() {
        // Headline claim: up to 32x longer context than multihead.
        let m = machine64();
        let mh = table1_row(&ModelConfig::palm_540b_multihead(), AttnSharding::Head, &m, 512);
        let opt = table1_row(&ModelConfig::palm_540b(), AttnSharding::Batch, &m, 512);
        assert!(opt as f64 / mh as f64 >= 32.0, "ratio {}", opt as f64 / mh as f64);
    }

    #[test]
    fn kv_heads_partially_replicate_beyond_head_count() {
        let mh = ModelConfig::palm_540b_multihead(); // 48 KV heads
        assert_eq!(kv_heads_per_chip(&mh, AttnSharding::Head, 16), 3);
        assert_eq!(kv_heads_per_chip(&mh, AttnSharding::Head, 48), 1);
        assert_eq!(kv_heads_per_chip(&mh, AttnSharding::Head, 64), 1); // replicated
    }

    #[test]
    fn batch_sharding_divides_sequences() {
        assert_eq!(kv_seqs_per_chip(AttnSharding::Batch, 64, 512), 8);
        assert_eq!(kv_seqs_per_chip(AttnSharding::Batch, 64, 32), 1); // partial
        assert_eq!(kv_seqs_per_chip(AttnSharding::Head, 64, 512), 512);
    }

    #[test]
    fn weight_shard_scales_inverse_with_chips() {
        let model = ModelConfig::palm_62b();
        let w8 = weight_bytes_per_chip(&model, 8, DType::Bf16);
        let w64 = weight_bytes_per_chip(&model, 64, DType::Bf16);
        assert!((w8 / w64 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn palm_540b_bf16_does_not_fit_8_chips() {
        // 1.08 TB of bf16 weights / 8 chips = 135 GB per chip > 32 GiB.
        let model = ModelConfig::palm_540b();
        let m8 = Machine::tpu_v4_slice(8).unwrap();
        assert!(!fits_in_memory(&m8, &model, AttnSharding::Batch, 1, 128, DType::Bf16, DType::Bf16));
        let m64 = machine64();
        assert!(fits_in_memory(&m64, &model, AttnSharding::Batch, 64, 2048, DType::Bf16, DType::Bf16));
    }

    #[test]
    fn wg_working_set_can_be_the_binding_constraint() {
        // PaLM 540B bf16 on 64 chips: the plain footprint fits, but fully
        // gathering a 4.7B-parameter layer (9.5 GB x 2 buffers) on top of
        // the 17 GB weight shard pushes past 32 GiB — exactly the
        // Section 3.5 hazard.
        let model = ModelConfig::palm_540b_padded();
        let m = machine64();
        assert!(fits_in_memory(&m, &model, AttnSharding::Batch, 512, 2048, DType::Bf16, DType::Bf16));
        assert!(!wg_fits_in_memory(&m, &model, AttnSharding::Batch, 64, 512, 2048, DType::Bf16, DType::Bf16),
            "XYZ-gathered bf16 540B should exceed HBM with a double-buffered gather");
        // Gathering over fewer chips (the X extent) keeps the working set
        // proportional and fits.
        assert!(wg_fits_in_memory(&m, &model, AttnSharding::Batch, 4, 512, 2048, DType::Bf16, DType::Bf16));
        // And int8 weights halve the gathered copy, restoring XYZ.
        assert!(wg_fits_in_memory(&m, &model, AttnSharding::Batch, 64, 512, 2048, DType::Int8, DType::Bf16));
    }

    #[test]
    fn long_context_multihead_exhausts_memory() {
        // Figure 8's dotted line: the full 118-layer multihead model at
        // batch 256, context > ~512 does not fit on 64 chips.
        let mh = ModelConfig::palm_540b_multihead();
        let m = machine64();
        assert!(!fits_in_memory(&m, &mh, AttnSharding::Head, 256, 2048, DType::Bf16, DType::Bf16));
        let opt = ModelConfig::palm_540b();
        assert!(fits_in_memory(&m, &opt, AttnSharding::Batch, 256, 2048, DType::Bf16, DType::Bf16));
    }
}
