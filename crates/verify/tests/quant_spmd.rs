//! Property tests for the SPMD pass over the chunked × int8 schedule
//! surface.
//!
//! Two properties:
//!
//! * **Acceptance**: every schedule the runtime can emit — any built-in
//!   layout, any overlap chunk count, with or without int8 weight
//!   annotation — extracts to per-chip programs that pass
//!   [`check_schedule_spmd`]. The chunked wire format and the chunk
//!   sub-transfers are part of the checked protocol, so this covers the
//!   full `with_overlap_chunks` × `with_weight_dtype` product.
//! * **Rejection**: corrupting a single chip's program — bumping one op's
//!   chunk count or flipping its wire dtype, the two disagreements the
//!   runtime's `debug_check_agreement` catches dynamically — must be
//!   rejected by [`check_spmd`]. A lint that cannot see a divergent rank
//!   would prove nothing about the fleet.

use esti_core::layout::MeshFactors;
use esti_core::schedule::{build_schedule, Schedule, WireFormat};
use esti_core::{AttnSharding, FfnLayout, GatherExtent, Layout};
use esti_hal::DType;
use esti_verify::spmd::ChipOp;
use esti_verify::{check_schedule_spmd, check_spmd, per_chip_program};
use proptest::prelude::*;

/// The built-in layout points the scenario sweep exercises, as
/// `(ffn, attn, mesh)` triples valid for the tiny config on 4 chips.
fn layout_points() -> Vec<Layout> {
    vec![
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xy),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
    ]
}

fn build(layout: &Layout, batch: usize, chunks: usize, int8: bool) -> Schedule {
    let cfg = esti_model::ModelConfig::tiny();
    let s = build_schedule(&cfg, layout, batch, 1).expect("built-in layout must build");
    let s = if chunks > 1 { s.with_overlap_chunks(chunks) } else { s };
    if int8 {
        s.with_weight_dtype(DType::Int8)
    } else {
        s
    }
}

/// Index of an op in `programs[chip]` whose group spans more than one
/// member — a divergence there is observable by a peer. (Degenerate mesh
/// axes of extent 1 make singleton groups, where no peer exists to
/// disagree with; the runtime's identity shortcut never exchanges there.)
fn shared_op_index(s: &Schedule, program: &[ChipOp]) -> Option<usize> {
    program
        .iter()
        .position(|op| s.torus.group_of(op.group.base, op.group.axes).len() > 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runtime_emittable_schedules_are_spmd_clean(
        layout in prop::sample::select(layout_points()),
        batch in prop::sample::select(vec![4usize, 8]),
        chunks in prop::sample::select(vec![1usize, 2, 4]),
        int8 in prop::sample::select(vec![false, true]),
    ) {
        let s = build(&layout, batch, chunks, int8);
        let report = check_schedule_spmd(&s).expect("emittable schedule must pass");
        prop_assert!(report.chips == 4);
        prop_assert!(report.ops > 0);
        if int8 && matches!(layout.ffn, FfnLayout::WeightGathered(_)) {
            let quant_ops = per_chip_program(&s, 1).expect("programs extract")[0]
                .iter()
                .filter(|op| op.wire == WireFormat::Int8)
                .count();
            prop_assert!(quant_ops > 0, "int8 annotation must reach the programs");
        }
    }

    #[test]
    fn single_rank_chunk_count_divergence_is_rejected(
        layout in prop::sample::select(layout_points()),
        chunks in prop::sample::select(vec![2usize, 4]),
        victim in 0usize..4,
    ) {
        let s = build(&layout, 8, chunks, false);
        let mut programs = per_chip_program(&s, 1).expect("programs extract");
        let Some(i) = shared_op_index(&s, &programs[victim]) else {
            prop_assert!(false, "every built-in layout has a shared collective");
            continue;
        };
        programs[victim][i].chunks += 1;
        prop_assert!(
            check_spmd(s.torus, &programs).is_err(),
            "a rank disagreeing on chunk count must be flagged"
        );
    }

    #[test]
    fn single_rank_wire_dtype_divergence_is_rejected(
        layout in prop::sample::select(layout_points()),
        chunks in prop::sample::select(vec![1usize, 4]),
        victim in 0usize..4,
    ) {
        let s = build(&layout, 8, chunks, true);
        let mut programs = per_chip_program(&s, 1).expect("programs extract");
        let Some(i) = shared_op_index(&s, &programs[victim]) else {
            prop_assert!(false, "every built-in layout has a shared collective");
            continue;
        };
        // Flip whatever the op carries: dense ranks posting into a
        // quantized exchange and vice versa are the same runtime assert.
        programs[victim][i].wire = match programs[victim][i].wire {
            WireFormat::Dense => WireFormat::Int8,
            WireFormat::Int8 => WireFormat::Dense,
        };
        prop_assert!(
            check_spmd(s.torus, &programs).is_err(),
            "a rank disagreeing on wire dtype must be flagged"
        );
    }
}
