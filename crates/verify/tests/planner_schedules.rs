//! The execution planner may pin any candidate chunk count onto any
//! built-in layout, dense or int8 — and every schedule in that reachable
//! set must pass the static analyzer (the SPMD and quant-dataflow passes
//! `esti-lint` runs). A planner choice must never be able to emit a
//! schedule the verifier rejects.
//!
//! Also cross-checks the planner's cost-model inputs: the overlap sites a
//! schedule reports must carry the Appendix A.1 byte accounting and
//! chunkable extents the runtime's ledger charges.

use esti_core::layout::MeshFactors;
use esti_core::schedule::{build_schedule, effective_chunks, Schedule};
use esti_core::{AttnSharding, FfnLayout, GatherExtent, Layout};
use esti_hal::DType;
use esti_model::{AttentionKind, BlockKind, MlpKind, ModelConfig, PositionKind};
use esti_runtime::planner::CANDIDATE_CHUNKS;
use esti_verify::{check_schedule_quantflow, check_schedule_spmd};
use proptest::prelude::*;

/// The benchmark's scaled-up tiny model. Schedules here are symbolic, so
/// size is free — and the int8 sweep *needs* real-sized shards: the
/// quantflow pass (correctly) rejects quantized wire formats on shards so
/// small that the per-column scales cancel the byte win, which is a fact
/// about `ModelConfig::tiny()`, not about the planner.
fn cfg() -> ModelConfig {
    ModelConfig {
        name: "tiny8x".to_owned(),
        n_layers: 2,
        d_model: 256,
        d_ff: 1024,
        n_heads: 8,
        d_head: 32,
        vocab: 128,
        attention: AttentionKind::MultiQuery,
        block: BlockKind::Parallel,
        mlp: MlpKind::SwiGlu,
        position: PositionKind::Rope,
        max_seq: 64,
    }
}

/// The built-in layout points the planner can plan for, on 4 chips.
fn layout_points() -> Vec<Layout> {
    vec![
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xy),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        },
    ]
}

/// One planner-emittable schedule: a layout pinned to a candidate chunk
/// count, with or without the int8 weight wire format.
fn planned_schedule(layout: &Layout, batch: usize, tokens: usize, chunks: usize, int8: bool) -> Schedule {
    let s = build_schedule(&cfg(), layout, batch, tokens).expect("built-in layout must build");
    let s = if chunks > 1 { s.with_overlap_chunks(chunks) } else { s };
    if int8 {
        s.with_weight_dtype(DType::Int8)
    } else {
        s
    }
}

/// Deterministic sweep of the full planner-reachable product at the
/// benchmark's decode shape: every layout x candidate chunk count x wire
/// format verifies clean.
#[test]
fn every_planner_emittable_schedule_passes_the_analyzer() {
    for layout in layout_points() {
        for &chunks in &CANDIDATE_CHUNKS {
            for int8 in [false, true] {
                let s = planned_schedule(&layout, 4, 1, chunks, int8);
                let spmd = check_schedule_spmd(&s);
                assert!(
                    spmd.is_ok(),
                    "{} chunks={chunks} int8={int8}: SPMD pass rejected: {spmd:?}",
                    layout.describe()
                );
                let quant = check_schedule_quantflow(&s);
                assert!(
                    quant.is_ok(),
                    "{} chunks={chunks} int8={int8}: quantflow pass rejected: {quant:?}",
                    layout.describe()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance property holds across forward shapes, not just the
    /// benchmark's: any batch/token shape the planner may be asked to plan
    /// produces analyzable schedules for every candidate chunk count.
    #[test]
    fn planner_reachable_schedules_verify_across_shapes(
        layout_ix in 0usize..6,
        // Weight-gathered and batch-sharded layouts shard activations over
        // the mesh, so only batches divisible by the 4-chip group build on
        // every layout point; smaller batches are not planner-reachable.
        batch in prop::sample::select(vec![4usize, 8, 16]),
        prefill in prop::sample::select(vec![false, true]),
        chunks in prop::sample::select(CANDIDATE_CHUNKS.to_vec()),
        int8 in prop::sample::select(vec![false, true]),
    ) {
        let layout = layout_points()[layout_ix];
        let tokens = if prefill { 4 } else { 1 };
        let s = planned_schedule(&layout, batch, tokens, chunks, int8);
        prop_assert!(check_schedule_spmd(&s).is_ok());
        prop_assert!(check_schedule_quantflow(&s).is_ok());
    }
}

#[test]
fn overlap_sites_report_a1_bytes_and_divisible_extents() {
    // ws1d decode: activations are replicated [batch, 1, d_model], every
    // chunkable site is an all-reduce over the 4-chip group, charged both
    // phases at 2 B/element (Appendix A.1) = 4 bytes per local element.
    let cfg = cfg();
    let layout = layout_points()[0];
    let (batch, d_model) = (4, cfg.d_model);
    let s = build_schedule(&cfg, &layout, batch, 1).expect("ws1d builds");
    let sites = s.overlap_sites();
    assert!(!sites.is_empty(), "ws1d decode must expose all-reduce sites");
    for site in &sites {
        assert!(site.label.ends_with("all-reduce"), "1D chunkable site: {}", site.label);
        assert_eq!(site.group, 4, "{}", site.label);
        assert_eq!(site.extent, d_model, "{}: chunking divides d_model", site.label);
        let local = (batch * d_model) as f64;
        assert!((site.bytes - 4.0 * local).abs() < 0.5, "{}: A.1 all-reduce bytes", site.label);
        // Every candidate chunk count maps to a divisor of the extent, so
        // the executor can always honor the planner's pick.
        for &want in &CANDIDATE_CHUNKS {
            let k = effective_chunks(site.extent, want);
            assert!(k >= 1 && site.extent % k == 0 && k <= want);
        }
    }
    // Per-layer sites fuse real einsum work; the planner's overlap model
    // depends on those FLOPs being non-zero.
    assert!(
        sites.iter().any(|s| s.per_layer && s.fused_flops > 0.0),
        "per-layer all-reduces must report fused producer FLOPs"
    );
}
