//! Pass 2 — SPMD schedule conformance and deadlock freedom.
//!
//! Symbolically extracts, for every chip coordinate, the sequence of
//! (collective op, group, local shape) it will issue when executing a
//! [`Schedule`], then proves that all members of each communication group
//! issue identical sequences. The checker plays the programs forward,
//! firing a group only when *every* member's next pending op targets that
//! group with the same op and shape; if the programs disagree it reports a
//! mismatch, and if no group can fire while work remains it reports a
//! deadlock with the stuck chips.

use std::collections::HashMap;
use std::fmt;

use esti_core::schedule::{Schedule, Step, SymOp, WireFormat};
use esti_topology::{AxisSet, ChipCoord, TorusShape};

/// Identity of a communication group: the axes it spans plus the base
/// coordinate (the group member with all spanned axes at zero). Two chips
/// are in the same group iff they agree on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId {
    /// Torus axes the group spans.
    pub axes: AxisSet,
    /// Group representative: the coordinate with the spanned axes zeroed.
    pub base: ChipCoord,
}

impl GroupId {
    /// The group containing `coord` spanning `axes`.
    #[must_use]
    pub fn of(coord: ChipCoord, axes: AxisSet) -> Self {
        let mut base = coord;
        for a in axes.iter() {
            base = base.with_axis(a, 0);
        }
        GroupId { axes, base }
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "axes {} at ({},{},{})",
            self.axes, self.base.x, self.base.y, self.base.z
        )
    }
}

/// One collective issued by one chip. A schedule step pipelined in `N`
/// chunks expands into `N` consecutive `ChipOp`s sharing the step's label
/// as a prefix, each carrying its chunk index and the per-chunk shape —
/// so the SPMD check proves every member posts the same number of chunks
/// in the same order, exactly the agreement the runtime's chunked
/// exchange protocol asserts dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipOp {
    /// Diagnostic label of the originating schedule step (shared by all
    /// chunks of one pipelined collective).
    pub label: &'static str,
    /// The collective operation.
    pub op: SymOp,
    /// The group this chip communicates with.
    pub group: GroupId,
    /// The chip-local input shape handed to this sub-transfer (the full
    /// input for a monolithic collective, one chunk's slice otherwise).
    pub shape: Vec<usize>,
    /// Zero-based chunk index within the originating step.
    pub chunk: usize,
    /// Total chunk count of the originating step (1 = monolithic).
    pub chunks: usize,
    /// Payload wire format. Members must agree: a rank posting a dense
    /// tensor into a quantized exchange (or vice versa) is exactly the
    /// disagreement the runtime's `debug_check_agreement` catches
    /// dynamically via its `quant` flag.
    pub wire: WireFormat,
}

/// The outcome of a successful SPMD check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmdReport {
    /// Number of chips whose programs were checked.
    pub chips: usize,
    /// Total per-chip collective ops consumed.
    pub ops: usize,
    /// Number of group firings (each retires one op on every member).
    pub firings: usize,
}

/// Why the SPMD check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpmdError {
    /// Two members of one group disagree on their next op.
    Mismatch {
        /// The group whose members disagree.
        group: String,
        /// Description of the disagreement.
        detail: String,
    },
    /// Work remains but no group can fire.
    Deadlock {
        /// Chips stuck with pending ops (chip id, pending op description).
        stuck: Vec<(usize, String)>,
    },
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmdError::Mismatch { group, detail } => {
                write!(f, "schedule mismatch in group {group}: {detail}")
            }
            SpmdError::Deadlock { stuck } => {
                write!(f, "deadlock: no group can fire; stuck chips:")?;
                for (id, op) in stuck {
                    write!(f, " [chip {id}: {op}]")?;
                }
                Ok(())
            }
        }
    }
}

fn describe(op: &ChipOp) -> String {
    let wire = match op.wire {
        WireFormat::Dense => "",
        WireFormat::Int8 => " (int8 wire)",
    };
    if op.chunks > 1 {
        format!(
            "{} [chunk {}/{}] {} over {} shape {:?}{wire}",
            op.label,
            op.chunk + 1,
            op.chunks,
            op.op,
            op.group,
            op.shape
        )
    } else {
        format!("{} {} over {} shape {:?}{wire}", op.label, op.op, op.group, op.shape)
    }
}

/// The dimension a chunked collective slices: the gathered/scattered dim
/// for all-gather and reduce-scatter, the concatenated dim for all-to-all,
/// and the trailing dimension for all-reduce (matching the runtime).
fn chunk_dim(op: SymOp, input: &esti_core::schedule::SymTensor) -> Option<usize> {
    match op {
        SymOp::AllGather { dim } | SymOp::ReduceScatter { dim } => input.dim_index(dim),
        SymOp::AllReduce => Some(input.global.len().saturating_sub(1)),
        SymOp::AllToAll { concat, .. } => input.dim_index(concat),
    }
}

/// Extract the per-chip collective program for `n_layers` layer iterations
/// of `schedule` followed by its final steps, indexed by chip id.
///
/// # Errors
///
/// Returns an error if a collective input is not divisible on the
/// schedule's torus (Pass 1 territory, but surfaced here too so the pass
/// is self-contained).
pub fn per_chip_program(
    schedule: &Schedule,
    n_layers: usize,
) -> Result<Vec<Vec<ChipOp>>, String> {
    let torus = schedule.torus;
    // Collect the collective template once; it is identical across layers.
    // A step pipelined in N chunks contributes N template entries, each
    // with the per-chunk slice shape.
    type Proto = (&'static str, SymOp, AxisSet, Vec<usize>, usize, usize, WireFormat);
    let mut layer_ops: Vec<Proto> = Vec::new();
    let mut final_ops: Vec<Proto> = Vec::new();
    for (steps, out) in [
        (&schedule.layer, &mut layer_ops),
        (&schedule.final_steps, &mut final_ops),
    ] {
        for step in steps {
            if let Step::Collective { label, op, axes, input, chunks, wire, .. } = step {
                let mut shape = input
                    .local_shape(torus)
                    .map_err(|e| format!("step \"{label}\": {e}"))?;
                if *chunks > 1 {
                    let dim = chunk_dim(*op, input).ok_or_else(|| {
                        format!("step \"{label}\": chunked collective has no chunkable dimension")
                    })?;
                    if shape[dim] % chunks != 0 {
                        return Err(format!(
                            "step \"{label}\": {chunks} chunks do not divide local \
                             dimension extent {}",
                            shape[dim]
                        ));
                    }
                    shape[dim] /= chunks;
                }
                for chunk in 0..*chunks {
                    out.push((*label, *op, *axes, shape.clone(), chunk, *chunks, *wire));
                }
            }
        }
    }

    let mut programs = vec![Vec::new(); torus.chip_count()];
    for coord in torus.chips() {
        let program = &mut programs[torus.chip_id(coord)];
        for _ in 0..n_layers {
            for &(label, op, axes, ref shape, chunk, chunks, wire) in &layer_ops {
                program.push(ChipOp {
                    label,
                    op,
                    group: GroupId::of(coord, axes),
                    shape: shape.clone(),
                    chunk,
                    chunks,
                    wire,
                });
            }
        }
        for &(label, op, axes, ref shape, chunk, chunks, wire) in &final_ops {
            program.push(ChipOp {
                label,
                op,
                group: GroupId::of(coord, axes),
                shape: shape.clone(),
                chunk,
                chunks,
                wire,
            });
        }
    }
    Ok(programs)
}

/// Play per-chip programs forward, firing groups whose members all agree
/// on the next op, and prove the whole execution drains without mismatch
/// or deadlock.
///
/// # Errors
///
/// [`SpmdError::Mismatch`] if two members of a group disagree on their
/// next collective (op, label, or shape); [`SpmdError::Deadlock`] if work
/// remains but no group can fire.
pub fn check_spmd(torus: TorusShape, programs: &[Vec<ChipOp>]) -> Result<SpmdReport, SpmdError> {
    assert_eq!(
        programs.len(),
        torus.chip_count(),
        "one program per chip required"
    );
    // Precompute group membership as chip ids, keyed by group identity.
    let mut members: HashMap<GroupId, Vec<usize>> = HashMap::new();
    for coord in torus.chips() {
        for prog_op in &programs[torus.chip_id(coord)] {
            members.entry(prog_op.group).or_insert_with(|| {
                torus
                    .group_of(prog_op.group.base, prog_op.group.axes)
                    .into_iter()
                    .map(|c| torus.chip_id(c))
                    .collect()
            });
        }
    }

    let mut head = vec![0usize; programs.len()];
    let total: usize = programs.iter().map(Vec::len).sum();
    let mut fired = 0usize;
    let mut firings = 0usize;

    loop {
        let mut progressed = false;
        for chip in 0..programs.len() {
            let Some(op) = programs[chip].get(head[chip]) else { continue };
            let group = &members[&op.group];
            // Fire only from the lowest-id member so each group fires once.
            if group[0] != chip {
                continue;
            }
            let mut ready = true;
            for &m in group {
                match programs[m].get(head[m]) {
                    Some(other) if other.group == op.group => {
                        if other.op != op.op
                            || other.label != op.label
                            || other.chunk != op.chunk
                            || other.chunks != op.chunks
                            || other.wire != op.wire
                        {
                            return Err(SpmdError::Mismatch {
                                group: op.group.to_string(),
                                detail: format!(
                                    "chip {chip} issues {} but chip {m} issues {}",
                                    describe(op),
                                    describe(other)
                                ),
                            });
                        }
                        if other.shape != op.shape {
                            return Err(SpmdError::Mismatch {
                                group: op.group.to_string(),
                                detail: format!(
                                    "chip {chip} brings shape {:?} but chip {m} brings {:?} \
                                     to {} {}",
                                    op.shape, other.shape, op.label, op.op
                                ),
                            });
                        }
                    }
                    _ => {
                        ready = false;
                        break;
                    }
                }
            }
            if ready {
                for &m in group {
                    head[m] += 1;
                    fired += 1;
                }
                firings += 1;
                progressed = true;
            }
        }
        if fired == total {
            return Ok(SpmdReport { chips: programs.len(), ops: total, firings });
        }
        if !progressed {
            let stuck = head
                .iter()
                .enumerate()
                .filter_map(|(chip, &h)| {
                    programs[chip].get(h).map(|op| (chip, describe(op)))
                })
                .collect();
            return Err(SpmdError::Deadlock { stuck });
        }
    }
}

/// Run the full pass for a schedule: extract per-chip programs (two layer
/// iterations exercise the cross-layer seam) and check them.
///
/// # Errors
///
/// Returns the formatted extraction or SPMD error.
pub fn check_schedule_spmd(schedule: &Schedule) -> Result<SpmdReport, String> {
    let programs = per_chip_program(schedule, 2)?;
    check_spmd(schedule.torus, &programs).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_topology::Axis;

    fn two_chip_torus() -> TorusShape {
        TorusShape::new(1, 1, 2)
    }

    fn op(label: &'static str, op: SymOp, coord: ChipCoord, axes: AxisSet) -> ChipOp {
        ChipOp {
            label,
            op,
            group: GroupId::of(coord, axes),
            shape: vec![2, 2],
            chunk: 0,
            chunks: 1,
            wire: WireFormat::Dense,
        }
    }

    #[test]
    fn identical_programs_pass() {
        let torus = two_chip_torus();
        let z = AxisSet::single(Axis::Z);
        let programs: Vec<Vec<ChipOp>> = torus
            .chips()
            .map(|c| vec![op("ag", SymOp::AllGather { dim: 'E' }, c, z)])
            .collect();
        let report = check_spmd(torus, &programs).unwrap();
        assert_eq!(report.chips, 2);
        assert_eq!(report.ops, 2);
        assert_eq!(report.firings, 1);
    }

    #[test]
    fn mismatched_ops_reported() {
        let torus = two_chip_torus();
        let z = AxisSet::single(Axis::Z);
        let c0 = ChipCoord::new(0, 0, 0);
        let c1 = ChipCoord::new(0, 0, 1);
        let programs = vec![
            vec![op("ag", SymOp::AllGather { dim: 'E' }, c0, z)],
            vec![op("ag", SymOp::ReduceScatter { dim: 'E' }, c1, z)],
        ];
        let err = check_spmd(torus, &programs).unwrap_err();
        assert!(matches!(err, SpmdError::Mismatch { .. }), "got {err}");
    }

    #[test]
    fn mismatched_shapes_reported() {
        let torus = two_chip_torus();
        let z = AxisSet::single(Axis::Z);
        let c0 = ChipCoord::new(0, 0, 0);
        let c1 = ChipCoord::new(0, 0, 1);
        let mut bad = op("ag", SymOp::AllGather { dim: 'E' }, c1, z);
        bad.shape = vec![2, 3];
        let programs = vec![vec![op("ag", SymOp::AllGather { dim: 'E' }, c0, z)], vec![bad]];
        let err = check_spmd(torus, &programs).unwrap_err();
        match err {
            SpmdError::Mismatch { detail, .. } => {
                assert!(detail.contains("shape"), "got {detail}");
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn missing_member_deadlocks() {
        let torus = two_chip_torus();
        let z = AxisSet::single(Axis::Z);
        let c0 = ChipCoord::new(0, 0, 0);
        let programs = vec![vec![op("ag", SymOp::AllGather { dim: 'E' }, c0, z)], vec![]];
        let err = check_spmd(torus, &programs).unwrap_err();
        match err {
            SpmdError::Deadlock { stuck } => {
                assert_eq!(stuck.len(), 1);
                assert_eq!(stuck[0].0, 0);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn crossed_group_wait_cycle_deadlocks() {
        // Four chips in a 2x2 yz plane, each waiting on a group whose
        // other member is waiting on a different group: z-group(row 0)
        // needs chip 0, which waits on y-group(col 0), which needs chip 2,
        // which waits on z-group(row 1), which needs chip 3, which waits
        // on y-group(col 1), which needs chip 1 -- a 4-cycle, so nothing
        // ever fires even though every op, label, and shape agrees.
        let torus = TorusShape::new(1, 2, 2);
        let y = AxisSet::single(Axis::Y);
        let z = AxisSet::single(Axis::Z);
        let ar = SymOp::AllReduce;
        let mut programs = vec![Vec::new(); torus.chip_count()];
        for coord in torus.chips() {
            let axes = if coord.y == coord.z { y } else { z };
            programs[torus.chip_id(coord)] = vec![op("ar", ar, coord, axes)];
        }
        let err = check_spmd(torus, &programs).unwrap_err();
        match err {
            SpmdError::Deadlock { ref stuck } => assert_eq!(stuck.len(), 4, "{err}"),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn chunked_step_expands_to_sub_ops_and_stays_clean() {
        use esti_core::layout::MeshFactors;
        use esti_core::schedule::build_schedule;
        use esti_core::{AttnSharding, FfnLayout, Layout};
        let cfg = esti_model::ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let mono = build_schedule(&cfg, &layout, 8, 1).unwrap();
        let chunked = mono.clone().with_overlap_chunks(4);
        let mono_prog = per_chip_program(&mono, 1).unwrap();
        let prog = per_chip_program(&chunked, 1).unwrap();
        // d_model = 16, want 4 -> every marked all-reduce becomes 4 sub-ops.
        assert!(
            prog[0].len() > mono_prog[0].len(),
            "chunking must expand the per-chip program ({} vs {})",
            prog[0].len(),
            mono_prog[0].len()
        );
        let sub: Vec<_> = prog[0]
            .iter()
            .filter(|o| o.label == "block all-reduce" || o.label == "mlp all-reduce")
            .collect();
        assert_eq!(sub.len(), 4, "one marked all-reduce expands to 4 chunks");
        for (i, o) in sub.iter().enumerate() {
            assert_eq!(o.chunk, i);
            assert_eq!(o.chunks, 4);
            assert_eq!(*o.shape.last().unwrap(), cfg.d_model / 4);
            assert!(describe(o).contains(&format!("[chunk {}/4]", i + 1)), "{}", describe(o));
        }
        let report = check_spmd(chunked.torus, &prog).unwrap();
        assert!(report.firings > mono_prog[0].len());
    }

    #[test]
    fn mismatched_chunk_counts_reported() {
        let torus = two_chip_torus();
        let z = AxisSet::single(Axis::Z);
        let c0 = ChipCoord::new(0, 0, 0);
        let c1 = ChipCoord::new(0, 0, 1);
        let mut a = op("ar", SymOp::AllReduce, c0, z);
        a.chunks = 2;
        let mut b = op("ar", SymOp::AllReduce, c1, z);
        b.chunks = 4;
        let err = check_spmd(torus, &[vec![a], vec![b]]).unwrap_err();
        match err {
            SpmdError::Mismatch { detail, .. } => {
                assert!(detail.contains("chunk"), "got {detail}");
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn mismatched_wire_formats_reported() {
        let torus = two_chip_torus();
        let z = AxisSet::single(Axis::Z);
        let c0 = ChipCoord::new(0, 0, 0);
        let c1 = ChipCoord::new(0, 0, 1);
        let a = op("wq weight all-gather", SymOp::AllGather { dim: 'F' }, c0, z);
        let mut b = op("wq weight all-gather", SymOp::AllGather { dim: 'F' }, c1, z);
        b.wire = WireFormat::Int8;
        let err = check_spmd(torus, &[vec![a], vec![b]]).unwrap_err();
        match err {
            SpmdError::Mismatch { detail, .. } => {
                assert!(detail.contains("int8 wire"), "got {detail}");
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn real_schedule_is_spmd_clean() {
        use esti_core::layout::MeshFactors;
        use esti_core::schedule::build_schedule;
        use esti_core::{AttnSharding, FfnLayout, Layout};
        let cfg = esti_model::ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let schedule = build_schedule(&cfg, &layout, 8, 1).unwrap();
        let report = check_schedule_spmd(&schedule).unwrap();
        assert!(report.firings > 0);
        assert_eq!(report.chips, 4);
    }
}
