//! Pass 4 — fault-path liveness of the collective protocol.
//!
//! The SPMD pass ([`crate::spmd`]) proves fault-free executions drain. This
//! pass proves the *faulty* ones terminate too: for every rank and every
//! collective call site in its per-chip program, it injects one abstract
//! fault — a crash (the rank panics entering the collective) or a stall
//! (the rank never arrives) — and explores the barrier/deadline/cancel
//! state machine of `esti-collectives`, as described by a
//! [`ProtocolModel`], until the system quiesces. Every surviving rank must
//! terminate, either by finishing its program or by unwinding with a typed
//! `CollectiveError`; the pass rejects executions where
//!
//! * a rank is still blocked or stalled at quiescence ([`LivenessError::Hang`]),
//!   i.e. the cancellation protocol failed to reach it (the injected stall
//!   itself is only a hang if its group was cancelled and the rank still did
//!   not abort — a stalled rank nobody shares a cancelled group with is the
//!   fault, not a protocol failure, and the harness's stalls are finite), or
//! * a rank posts into a group that was already cancelled
//!   ([`LivenessError::Orphan`]) — the untyped failure mode
//!   `Barrier::wait_deadline`'s entry fate check exists to prevent.
//!
//! Crash injections are explored with deadlines *disabled*: the crash/cancel
//! chain (`crash_cancels_entered_group` → `unwind_cancels_all_groups` →
//! `cancel_wakes_waiters`/`entry_checks_fate`) must suffice on its own,
//! without the timeout backstop. Stall injections exercise the deadline
//! chain: a stalled rank posts nothing, so only deadline expiry
//! (`deadline_armed`), its broadcast (`timeout_broadcasts`), and the
//! stalled rank's own fate polling (`stall_aborts_on_cancel`) can save the
//! group. The seeded-mutation tests at the bottom record which edges are
//! load-bearing for which fault class — and which are deliberately
//! redundant (dropping `crash_cancels_entered_group` alone is masked by the
//! unwind cascade, and dropping `timeout_broadcasts` alone is masked by
//! each expiring waiter's own unwind).
//!
//! The exploration is exhaustive over single faults: `ranks × call sites ×
//! {crash, stall}` simulations per schedule, each linear in the total op
//! count thanks to a worklist-driven group-firing engine over dense arrays.

use std::collections::HashMap;
use std::fmt;

use esti_collectives::ProtocolModel;
use esti_core::schedule::Schedule;
use esti_topology::TorusShape;

use crate::spmd::{per_chip_program, ChipOp, GroupId};

/// The abstract single fault injected at a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractFault {
    /// The rank panics on entry to the collective (its barrier may be
    /// cancelled first, per `crash_cancels_entered_group`).
    Crash,
    /// The rank never arrives at the collective and sits in `fault_point`'s
    /// polling sleep until its group is cancelled (or forever).
    Stall,
}

impl fmt::Display for AbstractFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractFault::Crash => write!(f, "crash"),
            AbstractFault::Stall => write!(f, "stall"),
        }
    }
}

/// One injection point: which rank faults, at which op of its program, how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Chip id of the faulty rank.
    pub rank: usize,
    /// Index into the rank's per-chip program (the collective being entered).
    pub call_index: usize,
    /// The fault injected there.
    pub fault: AbstractFault,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of rank {} at call {}", self.fault, self.rank, self.call_index)
    }
}

/// Successful exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessReport {
    /// Ranks in the torus.
    pub ranks: usize,
    /// Total collective call sites across all per-chip programs.
    pub call_sites: usize,
    /// Fault injections explored (`call_sites × 2`: crash and stall each).
    pub injections: usize,
}

/// A liveness violation found at some injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessError {
    /// At quiescence, some ranks neither finished nor unwound typed — the
    /// cancellation/deadline protocol never reached them.
    Hang {
        /// The injection that exposed the hang.
        site: FaultSite,
        /// Chip ids still blocked or stalled.
        stuck: Vec<usize>,
    },
    /// A surviving rank posted into an already-cancelled group instead of
    /// observing its fate at entry.
    Orphan {
        /// The injection that exposed the orphaned post.
        site: FaultSite,
        /// The rank that posted.
        rank: usize,
        /// The cancelled group it posted into.
        group: String,
    },
}

impl fmt::Display for LivenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LivenessError::Hang { site, stuck } => write!(
                f,
                "liveness: {site} leaves {} rank(s) hung (chips {stuck:?})",
                stuck.len()
            ),
            LivenessError::Orphan { site, rank, group } => write!(
                f,
                "liveness: {site} lets rank {rank} post into cancelled group {group}"
            ),
        }
    }
}

/// Per-chip program and group structure, precomputed once per schedule and
/// shared by every simulation (the fault site is the only thing that
/// varies).
struct Arena {
    /// Program of each chip as dense group indices, one per collective op.
    progs: Vec<Vec<u32>>,
    /// Chip ids of each group's members.
    members: Vec<Vec<u32>>,
    /// Deduplicated groups each chip belongs to (for the unwind cascade).
    chip_groups: Vec<Vec<u32>>,
    /// Group identities, for diagnostics.
    names: Vec<GroupId>,
}

impl Arena {
    fn build(torus: TorusShape, programs: &[Vec<ChipOp>]) -> Self {
        assert_eq!(programs.len(), torus.chip_count(), "one program per chip required");
        let mut index: HashMap<GroupId, u32> = HashMap::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut names: Vec<GroupId> = Vec::new();
        let mut progs: Vec<Vec<u32>> = vec![Vec::new(); programs.len()];
        let mut chip_groups: Vec<Vec<u32>> = vec![Vec::new(); programs.len()];
        for coord in torus.chips() {
            let chip = torus.chip_id(coord);
            for op in &programs[chip] {
                let gidx = *index.entry(op.group).or_insert_with(|| {
                    let idx = u32::try_from(members.len()).unwrap_or(u32::MAX);
                    members.push(
                        torus
                            .group_of(op.group.base, op.group.axes)
                            .into_iter()
                            .map(|c| u32::try_from(torus.chip_id(c)).unwrap_or(u32::MAX))
                            .collect(),
                    );
                    names.push(op.group);
                    idx
                });
                progs[chip].push(gidx);
                if !chip_groups[chip].contains(&gidx) {
                    chip_groups[chip].push(gidx);
                }
            }
        }
        Arena { progs, members, chip_groups, names }
    }
}

/// Per-chip status during one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Ready to advance (on the worklist).
    Run,
    /// Arrived at its next collective, waiting for the group to fire.
    Blocked(u32),
    /// Stalled by the injected fault inside `fault_point`, polling the
    /// fate of the group it was about to enter.
    Stalled(u32),
    /// Program complete.
    Done,
    /// Unwound with a typed `CollectiveError` (or is the injected crash).
    Dead,
}

struct Sim<'a> {
    arena: &'a Arena,
    model: &'a ProtocolModel,
    site: FaultSite,
    st: Vec<St>,
    head: Vec<usize>,
    arrived: Vec<u32>,
    cancelled: Vec<bool>,
    fault_pending: bool,
    orphan: Option<(usize, u32)>,
}

impl<'a> Sim<'a> {
    fn new(arena: &'a Arena, model: &'a ProtocolModel, site: FaultSite) -> Self {
        Sim {
            arena,
            model,
            site,
            st: vec![St::Run; arena.progs.len()],
            head: vec![0; arena.progs.len()],
            arrived: vec![0; arena.members.len()],
            cancelled: vec![false; arena.members.len()],
            fault_pending: true,
            orphan: None,
        }
    }

    /// Kill `chip` with a typed error and run the unwind cascade.
    fn die(&mut self, chip: usize, by_timeout: bool) {
        if matches!(self.st[chip], St::Dead | St::Done) {
            return;
        }
        self.st[chip] = St::Dead;
        if self.model.unwind_cancels_all_groups {
            // Borrow dance: the membership list is immutable per sim.
            for i in 0..self.arena.chip_groups[chip].len() {
                let g = self.arena.chip_groups[chip][i];
                self.cancel(g, by_timeout);
            }
        }
    }

    /// Cancel group `g`. `by_timeout` selects which notification edge
    /// applies: `Barrier::cancel`'s `notify_all` (`cancel_wakes_waiters`)
    /// or the expiring waiter's broadcast (`timeout_broadcasts`).
    fn cancel(&mut self, g: u32, by_timeout: bool) {
        if self.cancelled[g as usize] {
            return;
        }
        self.cancelled[g as usize] = true;
        let wakes = if by_timeout {
            self.model.timeout_broadcasts
        } else {
            self.model.cancel_wakes_waiters
        };
        for i in 0..self.arena.members[g as usize].len() {
            let m = self.arena.members[g as usize][i] as usize;
            match self.st[m] {
                St::Blocked(bg) if bg == g && wakes => self.die(m, by_timeout),
                St::Stalled(sg) if sg == g && self.model.stall_aborts_on_cancel => {
                    self.die(m, by_timeout);
                }
                _ => {}
            }
        }
    }

    /// Advance `chip` one op: inject the fault if this is the site, check
    /// the group's fate at entry, otherwise arrive and fire if complete.
    /// Returns chips freed by a group firing (to push on the worklist).
    fn advance(&mut self, chip: usize, freed: &mut Vec<usize>) {
        if self.st[chip] != St::Run {
            return;
        }
        let h = self.head[chip];
        let Some(&g) = self.arena.progs[chip].get(h) else {
            self.st[chip] = St::Done;
            return;
        };
        if self.fault_pending && chip == self.site.rank && h == self.site.call_index {
            self.fault_pending = false;
            match self.site.fault {
                AbstractFault::Crash => {
                    // `fault_point` cancels the entered barrier, then the
                    // panic unwinds into the engine's catch handler.
                    self.st[chip] = St::Dead;
                    if self.model.crash_cancels_entered_group {
                        self.cancel(g, false);
                    }
                    if self.model.unwind_cancels_all_groups {
                        for i in 0..self.arena.chip_groups[chip].len() {
                            let cg = self.arena.chip_groups[chip][i];
                            self.cancel(cg, false);
                        }
                    }
                }
                AbstractFault::Stall => {
                    self.st[chip] = St::Stalled(g);
                    if self.cancelled[g as usize] && self.model.stall_aborts_on_cancel {
                        self.die(chip, false);
                    }
                }
            }
            return;
        }
        if self.cancelled[g as usize] {
            if self.model.entry_checks_fate {
                self.die(chip, false);
            } else {
                self.orphan = Some((chip, g));
            }
            return;
        }
        self.arrived[g as usize] += 1;
        self.st[chip] = St::Blocked(g);
        if self.arrived[g as usize] as usize == self.arena.members[g as usize].len() {
            self.arrived[g as usize] = 0;
            for i in 0..self.arena.members[g as usize].len() {
                let m = self.arena.members[g as usize][i] as usize;
                self.head[m] += 1;
                self.st[m] = St::Run;
                freed.push(m);
            }
        }
    }

    /// Drain the worklist until no rank can make fault-free progress.
    fn run_to_quiescence(&mut self, worklist: &mut Vec<usize>) {
        let mut freed = Vec::new();
        while let Some(chip) = worklist.pop() {
            self.advance(chip, &mut freed);
            worklist.append(&mut freed);
            if self.orphan.is_some() {
                return;
            }
        }
    }

    fn run(mut self) -> Result<(), LivenessError> {
        let mut worklist: Vec<usize> = (0..self.arena.progs.len()).collect();
        self.run_to_quiescence(&mut worklist);
        // Stall injections exercise the deadline chain: at quiescence every
        // blocked waiter's deadline expires. Crash injections deliberately
        // run deadline-free — the cancel chain must suffice alone.
        let deadlines = self.site.fault == AbstractFault::Stall && self.model.deadline_armed;
        while self.orphan.is_none() && deadlines {
            let expired: Vec<(usize, u32)> = self
                .st
                .iter()
                .enumerate()
                .filter_map(|(c, s)| match s {
                    St::Blocked(g) => Some((c, *g)),
                    _ => None,
                })
                .collect();
            if expired.is_empty() {
                break;
            }
            for (chip, g) in expired {
                if self.st[chip] == St::Blocked(g) {
                    if self.model.timeout_broadcasts {
                        self.cancel(g, true);
                    }
                    // The expiring waiter itself always unwinds typed.
                    self.die(chip, true);
                }
            }
            // Cancellation never un-blocks survivors into `Run`, so no
            // further worklist drain is needed; loop in case cascades left
            // new waiters blocked on still-active groups (they expire next
            // round).
        }
        if let Some((rank, g)) = self.orphan {
            return Err(LivenessError::Orphan {
                site: self.site,
                rank,
                group: self.arena.names[g as usize].to_string(),
            });
        }
        let stuck: Vec<usize> = self
            .st
            .iter()
            .enumerate()
            .filter(|(_, s)| match s {
                St::Done | St::Dead => false,
                // A stalled rank whose group was never cancelled is the
                // injected fault itself, unobservable to the protocol: no
                // peer shares a cancelled group with its polling loop, so no
                // cancellation edge can reach it (e.g. a stall at a
                // singleton group on a degenerate torus axis). The harness's
                // stalls are finite — `FaultKind::Stall(dur)` resumes once
                // the duration elapses — and the deadline guarantee protects
                // the *peers*, which the filter still holds to Done/Dead.
                // A stalled rank whose group WAS cancelled had a protocol
                // path out (`stall_aborts_on_cancel`) and counts as hung.
                St::Stalled(g) => self.cancelled[*g as usize],
                St::Blocked(_) | St::Run => true,
            })
            .map(|(c, _)| c)
            .collect();
        if stuck.is_empty() {
            Ok(())
        } else {
            Err(LivenessError::Hang { site: self.site, stuck })
        }
    }
}

/// Exhaustively inject every single fault (each rank × each of its call
/// sites × crash/stall) into `programs` and explore the protocol described
/// by `model` to quiescence.
///
/// The programs must already be SPMD-clean ([`crate::spmd::check_spmd`]):
/// liveness of a mismatched schedule is not meaningful.
///
/// # Errors
///
/// The first [`LivenessError::Hang`] or [`LivenessError::Orphan`] found.
pub fn check_liveness(
    torus: TorusShape,
    programs: &[Vec<ChipOp>],
    model: &ProtocolModel,
) -> Result<LivenessReport, LivenessError> {
    let arena = Arena::build(torus, programs);
    let call_sites: usize = arena.progs.iter().map(Vec::len).sum();
    let mut injections = 0usize;
    for rank in 0..arena.progs.len() {
        for call_index in 0..arena.progs[rank].len() {
            for fault in [AbstractFault::Crash, AbstractFault::Stall] {
                let site = FaultSite { rank, call_index, fault };
                injections += 1;
                Sim::new(&arena, model, site).run()?;
            }
        }
    }
    Ok(LivenessReport { ranks: arena.progs.len(), call_sites, injections })
}

/// Run the pass for one schedule against the implemented protocol. One
/// layer iteration suffices: the group structure (which is all liveness
/// sees) repeats exactly across layers.
///
/// # Errors
///
/// Returns the formatted extraction or liveness error.
pub fn check_schedule_liveness(schedule: &Schedule) -> Result<LivenessReport, String> {
    let programs = per_chip_program(schedule, 1)?;
    check_liveness(schedule.torus, &programs, &ProtocolModel::implemented())
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_collectives::ProtocolEdge;
    use esti_core::layout::MeshFactors;
    use esti_core::schedule::build_schedule;
    use esti_core::{AttnSharding, FfnLayout, Layout};

    /// A 2×2 2D-weight-stationary schedule: multiple overlapping groups
    /// (x and yz), the interesting topology for cascade cancellation.
    fn two_d() -> Schedule {
        let cfg = esti_model::ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        build_schedule(&cfg, &layout, 8, 1).unwrap()
    }

    fn programs(s: &Schedule) -> Vec<Vec<ChipOp>> {
        per_chip_program(s, 1).unwrap()
    }

    #[test]
    fn implemented_protocol_survives_every_single_fault() {
        let s = two_d();
        let progs = programs(&s);
        let report =
            check_liveness(s.torus, &progs, &ProtocolModel::implemented()).unwrap();
        assert_eq!(report.ranks, 4);
        let sites: usize = progs.iter().map(Vec::len).sum();
        assert_eq!(report.call_sites, sites);
        assert_eq!(report.injections, sites * 2, "crash and stall at every site");
    }

    #[test]
    fn chunked_schedules_also_survive() {
        let s = two_d().with_overlap_chunks(4);
        let report = check_schedule_liveness(&s).unwrap();
        assert!(report.call_sites > 0);
        assert_eq!(report.injections, report.call_sites * 2);
    }

    #[test]
    fn dropped_unwind_cascade_hangs_on_crash() {
        // The seeded "dropped cancel edge" mutation of the ISSUE: without
        // the engine's unwind handler cancelling all of the dead chip's
        // groups, ranks waiting on its *other* groups never learn of the
        // crash (crash sims run deadline-free), so they hang.
        let s = two_d();
        let model = ProtocolModel::implemented().without(ProtocolEdge::UnwindCancelsAllGroups);
        let err = check_liveness(s.torus, &programs(&s), &model).unwrap_err();
        assert!(
            matches!(&err, LivenessError::Hang { site, .. } if site.fault == AbstractFault::Crash),
            "expected a crash-induced hang, got {err}"
        );
    }

    #[test]
    fn dropped_waiter_wakeup_hangs_on_crash() {
        let s = two_d();
        let model = ProtocolModel::implemented().without(ProtocolEdge::CancelWakesWaiters);
        let err = check_liveness(s.torus, &programs(&s), &model).unwrap_err();
        assert!(matches!(err, LivenessError::Hang { .. }), "got {err}");
    }

    #[test]
    fn dropped_entry_fate_check_orphans_a_post() {
        let s = two_d();
        let model = ProtocolModel::implemented().without(ProtocolEdge::EntryChecksFate);
        let err = check_liveness(s.torus, &programs(&s), &model).unwrap_err();
        assert!(
            matches!(err, LivenessError::Orphan { .. }),
            "a survivor should post into a cancelled group, got {err}"
        );
    }

    #[test]
    fn dropped_deadline_hangs_on_stall() {
        let s = two_d();
        let model = ProtocolModel::implemented().without(ProtocolEdge::DeadlineArmed);
        let err = check_liveness(s.torus, &programs(&s), &model).unwrap_err();
        assert!(
            matches!(&err, LivenessError::Hang { site, .. } if site.fault == AbstractFault::Stall),
            "expected a stall-induced hang, got {err}"
        );
    }

    #[test]
    fn dropped_stall_abort_leaves_the_stalled_rank_hung() {
        let s = two_d();
        let model = ProtocolModel::implemented().without(ProtocolEdge::StallAbortsOnCancel);
        let err = check_liveness(s.torus, &programs(&s), &model).unwrap_err();
        match err {
            LivenessError::Hang { site, stuck } => {
                assert_eq!(site.fault, AbstractFault::Stall);
                assert_eq!(stuck, vec![site.rank], "only the stalled rank itself is stuck");
            }
            other => panic!("expected hang, got {other}"),
        }
    }

    #[test]
    fn redundant_edges_are_masked_as_documented() {
        // These two single-edge drops must NOT be flagged: the module docs
        // promise the protocol is redundant there (the unwind cascade
        // covers the entered-group cancel, and each expiring waiter's own
        // unwind covers the missing timeout broadcast).
        let s = two_d();
        for edge in [ProtocolEdge::CrashCancelsEnteredGroup, ProtocolEdge::TimeoutBroadcasts] {
            let model = ProtocolModel::implemented().without(edge);
            check_liveness(s.torus, &programs(&s), &model)
                .unwrap_or_else(|e| panic!("dropping {edge:?} should be masked, got {e}"));
        }
    }

    #[test]
    fn one_dimensional_all_reduce_schedule_is_live() {
        let cfg = esti_model::ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        };
        let s = build_schedule(&cfg, &layout, 8, 1).unwrap();
        let report = check_schedule_liveness(&s).unwrap();
        assert_eq!(report.ranks, 4);
    }
}
