//! Pass 3 — static memory-fit analysis.
//!
//! Sums the per-chip weight shard, KV cache, and activation working set
//! for a (machine, model, layout, batch, context) configuration against
//! the esti-hal HBM capacity, reporting the margin. A configuration whose
//! steady-state residents overflow HBM is a hard failure; a
//! weight-gathered layout whose *transient* gathered-weights working set
//! overflows (Section 3.5) is reported as a warning, since the runtime can
//! trade it off by gathering in chunks.

use esti_core::memory::{
    kv_bytes_per_chip, weight_bytes_per_chip, wg_working_set_bytes,
};
use esti_core::{FfnLayout, Layout, Machine};
use esti_hal::DType;
use esti_model::ModelConfig;

/// Fraction of HBM usable for model state (the rest is runtime overhead).
pub const USABLE_HBM_FRACTION: f64 = 0.95;

/// Per-chip memory accounting for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemReport {
    /// Weight-shard bytes resident per chip.
    pub weight_bytes: f64,
    /// KV-cache bytes resident per chip.
    pub kv_bytes: f64,
    /// Activation working-set bytes per chip.
    pub act_bytes: f64,
    /// Usable per-chip HBM bytes (capacity × [`USABLE_HBM_FRACTION`]).
    pub capacity: f64,
    /// Whether the steady-state residents fit.
    pub fits: bool,
    /// Remaining capacity as a fraction of usable HBM (negative if over).
    pub margin_frac: f64,
    /// Set when a weight-gathered layout's transient working set would
    /// exceed the remaining capacity.
    pub wg_warning: Option<String>,
}

impl MemReport {
    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let gib = 1024.0 * 1024.0 * 1024.0;
        format!(
            "{:.2} GiB weights + {:.2} GiB kv + {:.3} GiB acts vs {:.1} GiB usable \
             ({:+.1}% margin){}",
            self.weight_bytes / gib,
            self.kv_bytes / gib,
            self.act_bytes / gib,
            self.capacity / gib,
            self.margin_frac * 100.0,
            if self.wg_warning.is_some() { " [wg warning]" } else { "" }
        )
    }
}

/// Compute the memory report for one configuration.
///
/// Mirrors [`esti_core::memory::fits_in_memory`] (same activation
/// allowance) but itemizes the terms and adds the weight-gathered
/// working-set warning of [`esti_core::memory::wg_fits_in_memory`].
#[must_use]
pub fn check_memory_fit(
    machine: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    batch: usize,
    context: usize,
    weight_dtype: DType,
    kv_dtype: DType,
) -> MemReport {
    let n = machine.n_chips();
    let weight_bytes = weight_bytes_per_chip(model, n, weight_dtype);
    let kv_bytes = kv_bytes_per_chip(model, layout.attn, n, batch, context, kv_dtype);
    let act_bytes = 4.0 * batch as f64 * model.d_model as f64 * 2.0;
    let capacity = machine.chip.hbm_capacity * USABLE_HBM_FRACTION;
    let resident = weight_bytes + kv_bytes + act_bytes;
    let fits = resident <= capacity;
    let margin_frac = (capacity - resident) / capacity;

    let wg_warning = match layout.ffn {
        FfnLayout::WeightGathered(extent) => {
            let n_gather = extent.n_gather(layout.mesh);
            let working = wg_working_set_bytes(model, n_gather, n, weight_dtype);
            (resident + working > capacity).then(|| {
                let gib = 1024.0 * 1024.0 * 1024.0;
                format!(
                    "transient gathered-weights working set ({:.2} GiB, double-buffered \
                     x{n_gather} gather) exceeds the remaining {:.2} GiB; the runtime \
                     must gather in chunks (Section 3.5)",
                    working / gib,
                    (capacity - resident) / gib,
                )
            })
        }
        FfnLayout::WeightStationary1D | FfnLayout::WeightStationary2D => None,
    };

    MemReport { weight_bytes, kv_bytes, act_bytes, capacity, fits, margin_frac, wg_warning }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_core::layout::MeshFactors;
    use esti_core::{AttnSharding, GatherExtent};

    #[test]
    fn palm_540b_bf16_overflows_8_chips() {
        let machine = Machine::tpu_v4_slice(8).unwrap();
        let model = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(8, model.d_model, model.d_ff),
        };
        let r = check_memory_fit(&machine, &model, &layout, 64, 2048, DType::Bf16, DType::Bf16);
        assert!(!r.fits, "540B bf16 cannot fit 8 chips: {}", r.summary());
        assert!(r.margin_frac < 0.0);
    }

    #[test]
    fn palm_540b_int8_fits_64_chips() {
        let machine = Machine::tpu_v4_slice(64).unwrap();
        let model = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
        };
        let r = check_memory_fit(&machine, &model, &layout, 64, 2048, DType::Int8, DType::Int8);
        assert!(r.fits, "540B int8 should fit 64 chips: {}", r.summary());
        assert!(r.wg_warning.is_none());
    }

    #[test]
    fn wg_working_set_warns_but_does_not_fail() {
        // Fully weight-gathered 540B at bf16 on 64 chips: the residents
        // fit but the transient gathered copy does not (Section 3.5).
        let machine = Machine::tpu_v4_slice(64).unwrap();
        let model = ModelConfig::palm_540b_padded();
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
        };
        let r = check_memory_fit(&machine, &model, &layout, 512, 2048, DType::Bf16, DType::Bf16);
        assert!(r.fits, "residents should fit: {}", r.summary());
        assert!(r.wg_warning.is_some(), "expected a working-set warning");
    }

    #[test]
    fn tiny_model_has_wide_margin() {
        let machine = Machine::tpu_v4_slice(8).unwrap();
        let model = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 2),
        };
        let r = check_memory_fit(&machine, &model, &layout, 8, 64, DType::Bf16, DType::Bf16);
        assert!(r.fits);
        assert!(r.margin_frac > 0.99, "tiny model should leave >99% free");
    }
}
