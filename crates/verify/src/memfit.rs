//! Pass 3 — static memory-fit analysis.
//!
//! Sums the per-chip weight shard, KV cache, and activation working set
//! for a (machine, model, layout, batch, context) configuration against
//! the esti-hal HBM capacity, reporting the margin. A configuration whose
//! steady-state residents overflow HBM is a hard failure; a
//! weight-gathered layout whose *transient* gathered-weights working set
//! overflows (Section 3.5) is reported as a warning, since the runtime can
//! trade it off by gathering in chunks.
//!
//! [`check_memory_fit`] charges the slab (dense) KV policy: `batch ×
//! context` positions regardless of actual lengths.
//! [`check_memory_fit_paged`] charges a paged pool instead: each request
//! holds `ceil(len / page_size)` pages at its worst-case length, full
//! pages inside a common shared prefix are counted **once** across the
//! fleet (copy-on-write sharing), and pool bytes are `pages × page_size ×`
//! the model's per-position K/V footprint.

use esti_core::memory::{
    kv_bytes_per_chip, weight_bytes_per_chip, wg_working_set_bytes,
};
use esti_core::{AttnSharding, FfnLayout, Layout, Machine};
use esti_hal::DType;
use esti_model::ModelConfig;

/// Fraction of HBM usable for model state (the rest is runtime overhead).
pub const USABLE_HBM_FRACTION: f64 = 0.95;

/// Per-chip memory accounting for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemReport {
    /// Weight-shard bytes resident per chip.
    pub weight_bytes: f64,
    /// KV-cache bytes resident per chip.
    pub kv_bytes: f64,
    /// Activation working-set bytes per chip.
    pub act_bytes: f64,
    /// Usable per-chip HBM bytes (capacity × [`USABLE_HBM_FRACTION`]).
    pub capacity: f64,
    /// Whether the steady-state residents fit.
    pub fits: bool,
    /// Remaining capacity as a fraction of usable HBM (negative if over).
    pub margin_frac: f64,
    /// Set when a weight-gathered layout's transient working set would
    /// exceed the remaining capacity.
    pub wg_warning: Option<String>,
    /// Paged-KV pool size backing `kv_bytes`, when the paged policy was
    /// accounted ([`check_memory_fit_paged`]); `None` under the slab
    /// policy.
    pub kv_pages: Option<usize>,
}

impl MemReport {
    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let gib = 1024.0 * 1024.0 * 1024.0;
        format!(
            "{:.2} GiB weights + {:.2} GiB kv + {:.3} GiB acts vs {:.1} GiB usable \
             ({:+.1}% margin){}",
            self.weight_bytes / gib,
            self.kv_bytes / gib,
            self.act_bytes / gib,
            self.capacity / gib,
            self.margin_frac * 100.0,
            if self.wg_warning.is_some() { " [wg warning]" } else { "" }
        )
    }
}

/// Compute the memory report for one configuration.
///
/// Mirrors [`esti_core::memory::fits_in_memory`] (same activation
/// allowance) but itemizes the terms and adds the weight-gathered
/// working-set warning of [`esti_core::memory::wg_fits_in_memory`].
#[must_use]
pub fn check_memory_fit(
    machine: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    batch: usize,
    context: usize,
    weight_dtype: DType,
    kv_dtype: DType,
) -> MemReport {
    let n = machine.n_chips();
    let weight_bytes = weight_bytes_per_chip(model, n, weight_dtype);
    let kv_bytes = kv_bytes_per_chip(model, layout.attn, n, batch, context, kv_dtype);
    let act_bytes = 4.0 * batch as f64 * model.d_model as f64 * 2.0;
    let capacity = machine.chip.hbm_capacity * USABLE_HBM_FRACTION;
    let resident = weight_bytes + kv_bytes + act_bytes;
    let fits = resident <= capacity;
    let margin_frac = (capacity - resident) / capacity;

    let wg_warning = match layout.ffn {
        FfnLayout::WeightGathered(extent) => {
            let n_gather = extent.n_gather(layout.mesh);
            let working = wg_working_set_bytes(model, n_gather, n, weight_dtype);
            (resident + working > capacity).then(|| {
                let gib = 1024.0 * 1024.0 * 1024.0;
                format!(
                    "transient gathered-weights working set ({:.2} GiB, double-buffered \
                     x{n_gather} gather) exceeds the remaining {:.2} GiB; the runtime \
                     must gather in chunks (Section 3.5)",
                    working / gib,
                    (capacity - resident) / gib,
                )
            })
        }
        FfnLayout::WeightStationary1D | FfnLayout::WeightStationary2D => None,
    };

    MemReport {
        weight_bytes,
        kv_bytes,
        act_bytes,
        capacity,
        fits,
        margin_frac,
        wg_warning,
        kv_pages: None,
    }
}

/// One request of a paged serving workload, for pool sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedRequest {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Leading prompt tokens drawn from the fleet's common shared prefix
    /// (a system prompt / few-shot header); must not exceed `prompt_len`.
    pub shared_prefix: usize,
    /// Worst-case generated tokens (the pool reserves for them).
    pub max_new: usize,
}

/// `(shared union, private)` page counts for a paged pool at worst case:
/// full pages inside the common shared prefix counted once across the
/// fleet, everything else (prompt tails, generation growth) per request.
fn paged_pool_parts(page_size: usize, requests: &[PagedRequest]) -> (usize, usize) {
    assert!(page_size > 0, "page size must be positive");
    let mut shared_union = 0usize;
    let mut private = 0usize;
    for r in requests {
        assert!(r.shared_prefix <= r.prompt_len, "shared prefix cannot exceed the prompt");
        let total = (r.prompt_len + r.max_new).div_ceil(page_size);
        let shared = (r.shared_prefix / page_size).min(total);
        shared_union = shared_union.max(shared);
        private += total - shared;
    }
    (shared_union, private)
}

/// Pages a paged KV pool needs for `requests` at worst case: every full
/// page inside the common shared prefix counted once across the fleet,
/// plus each request's private pages (prompt tail and generation growth).
#[must_use]
pub fn paged_pool_pages(page_size: usize, requests: &[PagedRequest]) -> usize {
    let (shared, private) = paged_pool_parts(page_size, requests);
    shared + private
}

/// [`check_memory_fit`] under the paged KV policy: the KV term charges the
/// pool [`paged_pool_pages`] sizes for this workload — shared prefix pages
/// once, every other page at worst-case request length — instead of the
/// slab's dense `batch × context`. Per chip, head sharding keeps every
/// page resident at `1/n` of the head width, while batch sharding spreads
/// rows (hence private pages) over chips with each chip sharing the prefix
/// among its own rows.
#[must_use]
pub fn check_memory_fit_paged(
    machine: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    page_size: usize,
    requests: &[PagedRequest],
    weight_dtype: DType,
    kv_dtype: DType,
) -> MemReport {
    let n = machine.n_chips();
    let (shared, private) = paged_pool_parts(page_size, requests);
    let pool = shared + private;
    let per_chip_pages = match layout.attn {
        AttnSharding::Head => pool,
        AttnSharding::Batch => shared + private.div_ceil(n),
    };
    let kv_bytes = kv_bytes_per_chip(
        model,
        layout.attn,
        n,
        1,
        per_chip_pages * page_size,
        kv_dtype,
    );
    // Weights, activations, capacity, and the weight-gathered transient
    // warning from the slab pass with the KV term zeroed out, re-derived
    // against the paged KV bytes.
    let base = check_memory_fit(machine, model, layout, requests.len(), 0, weight_dtype, kv_dtype);
    let resident = base.weight_bytes + kv_bytes + base.act_bytes;
    let fits = resident <= base.capacity;
    let margin_frac = (base.capacity - resident) / base.capacity;
    let wg_warning = match layout.ffn {
        FfnLayout::WeightGathered(extent) => {
            let n_gather = extent.n_gather(layout.mesh);
            let working = wg_working_set_bytes(model, n_gather, n, weight_dtype);
            (resident + working > base.capacity).then(|| {
                let gib = 1024.0 * 1024.0 * 1024.0;
                format!(
                    "transient gathered-weights working set ({:.2} GiB, double-buffered \
                     x{n_gather} gather) exceeds the remaining {:.2} GiB; the runtime \
                     must gather in chunks (Section 3.5)",
                    working / gib,
                    (base.capacity - resident) / gib,
                )
            })
        }
        FfnLayout::WeightStationary1D | FfnLayout::WeightStationary2D => None,
    };
    MemReport { kv_bytes, fits, margin_frac, wg_warning, kv_pages: Some(pool), ..base }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_core::layout::MeshFactors;
    use esti_core::{AttnSharding, GatherExtent};

    #[test]
    fn palm_540b_bf16_overflows_8_chips() {
        let machine = Machine::tpu_v4_slice(8).unwrap();
        let model = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(8, model.d_model, model.d_ff),
        };
        let r = check_memory_fit(&machine, &model, &layout, 64, 2048, DType::Bf16, DType::Bf16);
        assert!(!r.fits, "540B bf16 cannot fit 8 chips: {}", r.summary());
        assert!(r.margin_frac < 0.0);
    }

    #[test]
    fn palm_540b_int8_fits_64_chips() {
        let machine = Machine::tpu_v4_slice(64).unwrap();
        let model = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
        };
        let r = check_memory_fit(&machine, &model, &layout, 64, 2048, DType::Int8, DType::Int8);
        assert!(r.fits, "540B int8 should fit 64 chips: {}", r.summary());
        assert!(r.wg_warning.is_none());
    }

    #[test]
    fn wg_working_set_warns_but_does_not_fail() {
        // Fully weight-gathered 540B at bf16 on 64 chips: the residents
        // fit but the transient gathered copy does not (Section 3.5).
        let machine = Machine::tpu_v4_slice(64).unwrap();
        let model = ModelConfig::palm_540b_padded();
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
        };
        let r = check_memory_fit(&machine, &model, &layout, 512, 2048, DType::Bf16, DType::Bf16);
        assert!(r.fits, "residents should fit: {}", r.summary());
        assert!(r.wg_warning.is_some(), "expected a working-set warning");
    }

    #[test]
    fn paged_pool_counts_shared_pages_once() {
        // 8 requests, all sharing a 48-token prefix of 56-token prompts,
        // 8 generated tokens, 8-token pages: 6 shared pages once, plus
        // ceil(64/8) - 6 = 2 private pages each.
        let reqs =
            vec![PagedRequest { prompt_len: 56, shared_prefix: 48, max_new: 8 }; 8];
        assert_eq!(paged_pool_pages(8, &reqs), 6 + 8 * 2);
        // Without sharing the same fleet needs 8 full block tables.
        let unshared =
            vec![PagedRequest { prompt_len: 56, shared_prefix: 0, max_new: 8 }; 8];
        assert_eq!(paged_pool_pages(8, &unshared), 8 * 8);
    }

    #[test]
    fn paged_pool_rounds_ragged_tails_up() {
        let reqs = [
            PagedRequest { prompt_len: 5, shared_prefix: 0, max_new: 2 },
            PagedRequest { prompt_len: 17, shared_prefix: 16, max_new: 0 },
            PagedRequest { prompt_len: 16, shared_prefix: 16, max_new: 1 },
        ];
        // ceil(7/8)=1 private; shared union 2 pages; r1: ceil(17/8)=3 − 2
        // shared = 1 private; r2: ceil(17/8)=3 − 2 = 1 private.
        assert_eq!(paged_pool_pages(8, &reqs), 2 + 1 + 1 + 1);
    }

    #[test]
    fn paged_fit_beats_slab_fit_on_shared_fleets() {
        // PaLM 540B int8 on 64 chips, head-sharded multiquery: every chip
        // holds the whole (replicated-head) cache, so a 64-way
        // shared-prefix fleet shrinks per-chip KV by the sharing factor.
        let machine = Machine::tpu_v4_slice(64).unwrap();
        let model = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
        };
        let reqs =
            vec![PagedRequest { prompt_len: 1792, shared_prefix: 1792, max_new: 256 }; 64];
        let paged = check_memory_fit_paged(
            &machine, &model, &layout, 16, &reqs, DType::Int8, DType::Int8,
        );
        let slab =
            check_memory_fit(&machine, &model, &layout, 64, 2048, DType::Int8, DType::Int8);
        assert!(paged.fits, "{}", paged.summary());
        assert!(
            paged.kv_bytes < slab.kv_bytes / 4.0,
            "sharing 1792 of 2048 positions must shrink the pool >4x: paged {} vs slab {}",
            paged.kv_bytes,
            slab.kv_bytes
        );
        let pages = paged.kv_pages.unwrap();
        assert_eq!(pages, 112 + 64 * 16); // 1792/16 shared once + 256/16 each
    }

    #[test]
    fn batch_sharded_pool_spreads_private_pages_over_chips() {
        // Batch sharding: 8 rows per chip on 8 chips — each chip shares
        // the prefix among its own rows, so per-chip KV still beats slab.
        let machine = Machine::tpu_v4_slice(8).unwrap();
        let model = ModelConfig::palm_540b();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(8, model.d_model, model.d_ff),
        };
        let reqs =
            vec![PagedRequest { prompt_len: 1792, shared_prefix: 1792, max_new: 256 }; 64];
        let paged = check_memory_fit_paged(
            &machine, &model, &layout, 16, &reqs, DType::Int8, DType::Int8,
        );
        let slab =
            check_memory_fit(&machine, &model, &layout, 64, 2048, DType::Int8, DType::Int8);
        // Per chip: 112 shared + ceil(1024/8) = 240 pages = 3840 positions
        // vs the slab's 8 rows x 2048 = 16384 positions.
        assert!(
            paged.kv_bytes < slab.kv_bytes / 4.0,
            "paged {} vs slab {}",
            paged.kv_bytes,
            slab.kv_bytes
        );
    }

    #[test]
    fn tiny_model_has_wide_margin() {
        let machine = Machine::tpu_v4_slice(8).unwrap();
        let model = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 2),
        };
        let r = check_memory_fit(&machine, &model, &layout, 8, 64, DType::Bf16, DType::Bf16);
        assert!(r.fits);
        assert!(r.margin_frac > 0.99, "tiny model should leave >99% free");
    }
}
