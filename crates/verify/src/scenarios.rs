//! Built-in lint scenarios: every layout family × attention sharding ×
//! model × slice size the repo ships, plus the planner's own chosen
//! layouts, each pushed through all verification passes — plus the
//! scenario-independent protocol rows (serving slot lifecycle).

use esti_core::layout::MeshFactors;
use esti_core::{planner, AttnSharding, FfnLayout, GatherExtent, Layout, Machine};
use esti_hal::DType;
use esti_model::ModelConfig;
use esti_runtime::BatcherSpec;

use crate::algebra::check_layout_algebra;
use crate::lifecycle::check_lifecycle;
use crate::liveness::{check_schedule_liveness, LivenessReport};
use crate::memfit::{check_memory_fit, MemReport};
use crate::quantflow::{check_schedule_quantflow, QuantflowReport};
use crate::spmd::{check_schedule_spmd, SpmdReport};

/// One model × slice configuration to sweep layouts over.
pub struct Scenario {
    /// Model under test.
    pub model: ModelConfig,
    /// Machine slice (sets chip count and HBM).
    pub machine: Machine,
    /// Decode batch size (token count for the algebra pass).
    pub batch: usize,
    /// KV-cache context length for the memory pass.
    pub context: usize,
    /// Weight storage dtype.
    pub weight_dtype: DType,
    /// KV-cache dtype.
    pub kv_dtype: DType,
}

/// Verdict for one (scenario, layout) combination.
pub enum Outcome {
    /// All passes succeeded.
    Pass {
        /// SPMD report (chips, ops, firings).
        spmd: SpmdReport,
        /// Memory report (may carry a weight-gathered warning).
        mem: MemReport,
        /// Fault-path liveness, merged over the monolithic and chunked
        /// schedules (ranks are shared; sites and injections sum).
        liveness: LivenessReport,
        /// Quant-dataflow report for int8-weight scenarios (`None` when
        /// weights stay dense — nothing to check).
        quant: Option<QuantflowReport>,
    },
    /// A scenario-independent protocol row (e.g. the serving slot
    /// lifecycle) that holds; carries its summary.
    Verified(String),
    /// The combination is structurally inapplicable (indivisible shard or
    /// a layout precondition like multiquery attention) — not a bug.
    Skipped(String),
    /// A pass found a real inconsistency.
    Fail(String),
}

/// One row of the lint report.
pub struct ComboResult {
    /// Scenario name (model @ chips).
    pub scenario: String,
    /// Layout description.
    pub layout: String,
    /// Verdict.
    pub outcome: Outcome,
}

/// Classify a pass error: divisibility and layout preconditions are
/// expected incompatibilities of the sweep, anything else is a bug.
fn classify(err: String) -> Outcome {
    if err.contains("divisible") || err.contains("multiquery") {
        Outcome::Skipped(err)
    } else {
        Outcome::Fail(err)
    }
}

/// All layout-family × attention-sharding combinations on the meshes the
/// planner would use for this model and slice.
#[must_use]
pub fn sweep_layouts(model: &ModelConfig, n_chips: usize) -> Vec<Layout> {
    let ffns = [
        FfnLayout::WeightStationary1D,
        FfnLayout::WeightStationary2D,
        FfnLayout::WeightGathered(GatherExtent::X),
        FfnLayout::WeightGathered(GatherExtent::Xy),
        FfnLayout::WeightGathered(GatherExtent::Xyz),
    ];
    let mut layouts = Vec::new();
    for ffn in ffns {
        let mesh: MeshFactors = match ffn {
            FfnLayout::WeightStationary1D => Layout::ws1d_mesh(n_chips),
            _ => Layout::ws2d_mesh(n_chips, model.d_model, model.d_ff),
        };
        for attn in [AttnSharding::Head, AttnSharding::Batch] {
            layouts.push(Layout { ffn, attn, mesh });
        }
    }
    layouts
}

/// Run every pass on one (scenario, layout) combination.
#[must_use]
#[allow(clippy::too_many_lines)] // one function = the whole pass pipeline.
pub fn check_combo(s: &Scenario, layout: &Layout) -> Outcome {
    // Pass 1: sharding algebra over the analytic comm model.
    if let Err(e) = check_layout_algebra(&s.model, layout, s.batch) {
        return classify(format!("algebra: {e}"));
    }
    // Pass 2: symbolic schedule + per-chip SPMD conformance.
    let schedule = match esti_core::schedule::build_schedule(&s.model, layout, s.batch, 1) {
        Ok(sch) => sch,
        Err(e) => return classify(format!("schedule: {e}")),
    };
    if let Err(e) = schedule.verify() {
        return classify(format!("schedule: {e}"));
    }
    let spmd = match check_schedule_spmd(&schedule) {
        Ok(r) => r,
        Err(e) => return classify(format!("spmd: {e}")),
    };
    // Pass 2b: the overlapped runtime's chunked schedule. Chunking splits
    // each marked collective into sub-ops but must not change sharding
    // semantics or deadlock-freedom — so the annotated schedule has to
    // verify too, with at least as many group firings.
    let chunked = schedule.clone().with_overlap_chunks(4);
    if let Err(e) = chunked.verify() {
        return classify(format!("chunked schedule: {e}"));
    }
    let chunked_spmd = match check_schedule_spmd(&chunked) {
        Ok(r) => r,
        Err(e) => return classify(format!("chunked spmd: {e}")),
    };
    if chunked_spmd.firings < spmd.firings {
        return Outcome::Fail(format!(
            "chunked spmd: firings dropped {} -> {}",
            spmd.firings, chunked_spmd.firings
        ));
    }
    // Pass 3: memory fit.
    let mem = check_memory_fit(
        &s.machine,
        &s.model,
        layout,
        s.batch,
        s.context,
        s.weight_dtype,
        s.kv_dtype,
    );
    if !mem.fits {
        return Outcome::Fail(format!("memory: over HBM — {}", mem.summary()));
    }
    // Pass 4: fault-path liveness, for both execution modes (monolithic and
    // chunked overlap): every rank × collective call site × {crash, stall}.
    let live_mono = match check_schedule_liveness(&schedule) {
        Ok(r) => r,
        Err(e) => return Outcome::Fail(format!("liveness: {e}")),
    };
    let live_chunked = match check_schedule_liveness(&chunked) {
        Ok(r) => r,
        Err(e) => return Outcome::Fail(format!("chunked liveness: {e}")),
    };
    let liveness = LivenessReport {
        ranks: live_mono.ranks,
        call_sites: live_mono.call_sites + live_chunked.call_sites,
        injections: live_mono.injections + live_chunked.injections,
    };
    // Pass 5: quant dataflow, when this scenario stores int8 weights. The
    // annotated schedules must stay SPMD-clean (wire agreement) and every
    // quantized stream must line up with the executor's scale plan.
    let quant = if s.weight_dtype == DType::Int8 {
        let q_mono = schedule.clone().with_weight_dtype(DType::Int8);
        let q_chunked = chunked.clone().with_weight_dtype(DType::Int8);
        if let Err(e) = check_schedule_spmd(&q_chunked) {
            return Outcome::Fail(format!("int8 spmd: {e}"));
        }
        if let Err(e) = check_schedule_quantflow(&q_mono) {
            return Outcome::Fail(e);
        }
        match check_schedule_quantflow(&q_chunked) {
            Ok(r) => Some(r),
            Err(e) => return Outcome::Fail(e),
        }
    } else {
        None
    };
    Outcome::Pass { spmd, mem, liveness, quant }
}

/// The slot-machine parameters the shipped scheduler runs with (the
/// `spec_matches_the_live_scheduler` test in [`crate::lifecycle`] pins this
/// literal to what a real `ContinuousBatcher` reports).
#[must_use]
pub fn default_batcher_spec() -> BatcherSpec {
    BatcherSpec {
        slots: 4,
        max_recoveries: 3,
        prefill_emits_first_token: true,
        replay_restarts_at: 1,
        page_size: Some(esti_runtime::DEFAULT_KV_PAGE_SIZE),
        pool_pages: None,
        preemption: true,
    }
}

/// The scenario-independent protocol rows: currently the serving slot
/// lifecycle over the shipped scheduler parameters.
#[must_use]
pub fn protocol_rows() -> Vec<ComboResult> {
    let spec = default_batcher_spec();
    let outcome = match check_lifecycle(&spec) {
        Ok(r) => Outcome::Verified(format!(
            "{} traces, {} steps, {} recoveries, {} preemptions, {} budget stops",
            r.traces, r.steps, r.recoveries, r.preemptions, r.recovery_limits
        )),
        Err(e) => Outcome::Fail(e.to_string()),
    };
    vec![ComboResult {
        scenario: "serving protocol".to_string(),
        layout: format!(
            "slot lifecycle (slots={}, recovery budget={})",
            spec.slots, spec.max_recoveries
        ),
        outcome,
    }]
}

/// The shipped scenario list: every built-in model on a slice it is meant
/// to serve on, at the paper's dtypes.
#[must_use]
pub fn builtin_scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    let mk = |model: ModelConfig, n: usize, batch: usize, context: usize, wd: DType, kd: DType| {
        Scenario {
            model,
            machine: Machine::tpu_v4_slice(n).expect("catalog slice"),
            batch,
            context,
            weight_dtype: wd,
            kv_dtype: kd,
        }
    };
    v.push(mk(ModelConfig::tiny(), 8, 32, 64, DType::Bf16, DType::Bf16));
    v.push(mk(ModelConfig::tiny_multihead(), 8, 32, 64, DType::Bf16, DType::Bf16));
    v.push(mk(ModelConfig::palm_8b(), 8, 64, 1024, DType::Bf16, DType::Bf16));
    v.push(mk(ModelConfig::palm_62b(), 32, 128, 1024, DType::Bf16, DType::Bf16));
    // 540B at bf16 does not fit 64 chips with margin; the paper serves it
    // int8-quantized (Section 3.6). Batch/context sized so even the
    // baseline head-sharded-attention variant (which replicates the single
    // multiquery KV head on every chip) stays within HBM.
    v.push(mk(ModelConfig::palm_540b(), 64, 64, 1024, DType::Int8, DType::Int8));
    v.push(mk(ModelConfig::palm_540b_padded(), 64, 64, 1024, DType::Int8, DType::Int8));
    v
}

/// Sweep one scenario over all layout combinations plus the planner's
/// decode choice for the scenario batch.
#[must_use]
pub fn run_scenario(s: &Scenario) -> Vec<ComboResult> {
    let name = format!("{} @ {} chips", s.model.name, s.machine.n_chips());
    let mut results = Vec::new();
    for layout in sweep_layouts(&s.model, s.machine.n_chips()) {
        results.push(ComboResult {
            scenario: name.clone(),
            layout: layout.describe(),
            outcome: check_combo(s, &layout),
        });
    }
    // The planner's own decode layout must never be Skipped: it is chosen
    // for this model/slice/batch, so an incompatibility is a planner bug.
    let chosen = planner::decode_layout_for_batch(&s.model, &s.machine, s.batch);
    let outcome = match check_combo(s, &chosen) {
        Outcome::Skipped(e) => Outcome::Fail(format!("planner chose an inapplicable layout: {e}")),
        other => other,
    };
    results.push(ComboResult {
        scenario: name,
        layout: format!("planner decode: {}", chosen.describe()),
        outcome,
    });
    results
}

/// Run every built-in scenario plus the scenario-independent protocol
/// rows. The lint passes iff no [`Outcome::Fail`].
#[must_use]
pub fn run_all() -> Vec<ComboResult> {
    let mut results: Vec<ComboResult> =
        builtin_scenarios().iter().flat_map(run_scenario).collect();
    results.extend(protocol_rows());
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sweep_has_no_failures() {
        let results = run_all();
        assert!(!results.is_empty());
        let mut passes = 0;
        let mut verified = 0;
        let mut quant_rows = 0;
        for r in &results {
            match &r.outcome {
                Outcome::Fail(e) => panic!("{} | {}: {e}", r.scenario, r.layout),
                Outcome::Pass { liveness, quant, .. } => {
                    passes += 1;
                    // Every passing combination must have been fault-injected
                    // exhaustively: crash and stall at every call site.
                    assert!(liveness.call_sites > 0, "{} | {}", r.scenario, r.layout);
                    assert_eq!(
                        liveness.injections,
                        liveness.call_sites * 2,
                        "{} | {}",
                        r.scenario,
                        r.layout
                    );
                    if let Some(q) = quant {
                        quant_rows += 1;
                        assert!(q.wire_ratio() <= 1.0);
                    }
                }
                Outcome::Verified(_) => verified += 1,
                Outcome::Skipped(_) => {}
            }
        }
        assert!(passes > 0, "sweep should verify at least one combination");
        assert!(verified > 0, "the lifecycle protocol row must be present");
        assert!(quant_rows > 0, "int8 scenarios must produce quant-dataflow rows");
    }

    #[test]
    fn over_hbm_configuration_fails() {
        // Seeded bad plan for Pass 3: 540B bf16 on 8 chips.
        let model = ModelConfig::palm_540b();
        let s = Scenario {
            machine: Machine::tpu_v4_slice(8).unwrap(),
            batch: 64,
            context: 2048,
            weight_dtype: DType::Bf16,
            kv_dtype: DType::Bf16,
            model: model.clone(),
        };
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(8, model.d_model, model.d_ff),
        };
        match check_combo(&s, &layout) {
            Outcome::Fail(e) => assert!(e.contains("memory"), "got {e}"),
            Outcome::Pass { .. } | Outcome::Verified(_) => {
                panic!("540B bf16 on 8 chips must not pass")
            }
            Outcome::Skipped(e) => panic!("should fail, not skip: {e}"),
        }
    }

    #[test]
    fn multihead_batch_attention_skipped() {
        let model = ModelConfig::tiny_multihead();
        let s = Scenario {
            machine: Machine::tpu_v4_slice(8).unwrap(),
            batch: 32,
            context: 64,
            weight_dtype: DType::Bf16,
            kv_dtype: DType::Bf16,
            model: model.clone(),
        };
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(8, model.d_model, model.d_ff),
        };
        match check_combo(&s, &layout) {
            Outcome::Skipped(e) => assert!(e.contains("multiquery"), "got {e}"),
            Outcome::Pass { .. } | Outcome::Verified(_) => {
                panic!("multihead batch attention must be skipped")
            }
            Outcome::Fail(e) => panic!("should skip, not fail: {e}"),
        }
    }
}
