//! `esti-lint` — static checks over every built-in layout × model × slice
//! combination. Exits 0 iff no combination fails a pass.

use esti_verify::{run_all, Outcome};

fn main() {
    let results = run_all();
    let mut passes = 0usize;
    let mut skips = 0usize;
    let mut fails = 0usize;
    let mut warnings = 0usize;
    let mut scenario = String::new();

    for r in &results {
        if r.scenario != scenario {
            scenario = r.scenario.clone();
            println!("\n== {scenario} ==");
        }
        match &r.outcome {
            Outcome::Pass { spmd, mem } => {
                passes += 1;
                let wg = match &mem.wg_warning {
                    Some(w) => {
                        warnings += 1;
                        format!("  WARN {w}")
                    }
                    None => String::new(),
                };
                println!(
                    "  PASS {:<55} spmd {} chips/{} firings, mem {}{wg}",
                    r.layout,
                    spmd.chips,
                    spmd.firings,
                    mem.summary()
                );
            }
            Outcome::Skipped(e) => {
                skips += 1;
                println!("  skip {:<55} {e}", r.layout);
            }
            Outcome::Fail(e) => {
                fails += 1;
                println!("  FAIL {:<55} {e}", r.layout);
            }
        }
    }

    println!(
        "\nesti-lint: {passes} passed, {skips} skipped, {warnings} warnings, {fails} failed"
    );
    if fails > 0 {
        std::process::exit(1);
    }
}
