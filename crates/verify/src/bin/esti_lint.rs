//! `esti-lint` — static checks over every built-in layout × model × slice
//! combination plus the scenario-independent protocol rows.
//!
//! Exit status: 0 iff no combination fails a pass (and, under `--strict`,
//! no combination warns either).
//!
//! Flags:
//!
//! * `--strict` — treat warnings (weight-gathered working-set margins) as
//!   failures: exit nonzero if any row warns;
//! * `--json <path>` — additionally write the full report as a JSON array
//!   (one object per row: scenario, layout, status, detail) for CI
//!   artifact upload; `--json -` writes it to stdout instead.

use std::fmt::Write as _;

use esti_verify::{run_all, ComboResult, Outcome};

/// Minimal JSON string escaping (the report contains no exotic content,
/// but labels may carry quotes or backslashes in principle).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One row rendered as a JSON object.
fn json_row(r: &ComboResult) -> String {
    let (status, detail) = match &r.outcome {
        Outcome::Pass { spmd, mem, liveness, quant } => {
            let mut d = format!(
                "spmd {} chips/{} firings; liveness {} sites/{} injections; mem {}",
                spmd.chips,
                spmd.firings,
                liveness.call_sites,
                liveness.injections,
                mem.summary()
            );
            if let Some(q) = quant {
                let _ = write!(
                    d,
                    "; quant {} streams, wire ratio {:.4}",
                    q.streams_covered,
                    q.wire_ratio()
                );
            }
            let status = if mem.wg_warning.is_some() { "warn" } else { "pass" };
            (status, d)
        }
        Outcome::Verified(summary) => ("verified", summary.clone()),
        Outcome::Skipped(e) => ("skip", e.clone()),
        Outcome::Fail(e) => ("fail", e.clone()),
    };
    let warning = match &r.outcome {
        Outcome::Pass { mem, .. } => mem
            .wg_warning
            .as_ref()
            .map_or_else(|| "null".to_string(), |w| format!("\"{}\"", json_escape(w))),
        _ => "null".to_string(),
    };
    format!(
        "  {{\"scenario\": \"{}\", \"layout\": \"{}\", \"status\": \"{}\", \
         \"detail\": \"{}\", \"warning\": {}}}",
        json_escape(&r.scenario),
        json_escape(&r.layout),
        status,
        json_escape(&detail),
        warning
    )
}

fn main() {
    let mut strict = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("esti-lint: --json requires a path (or - for stdout)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("esti-lint: unknown flag {other} (try --strict, --json <path>)");
                std::process::exit(2);
            }
        }
    }

    let results = run_all();
    let mut passes = 0usize;
    let mut skips = 0usize;
    let mut fails = 0usize;
    let mut warnings = 0usize;
    let mut scenario = String::new();

    for r in &results {
        if r.scenario != scenario {
            scenario = r.scenario.clone();
            println!("\n== {scenario} ==");
        }
        match &r.outcome {
            Outcome::Pass { spmd, mem, liveness, quant } => {
                passes += 1;
                let wg = match &mem.wg_warning {
                    Some(w) => {
                        warnings += 1;
                        format!("  WARN {w}")
                    }
                    None => String::new(),
                };
                let q = match quant {
                    Some(q) => format!(", int8 wire {:.2}x", q.wire_ratio()),
                    None => String::new(),
                };
                println!(
                    "  PASS {:<55} spmd {} chips/{} firings, live {} inj, mem {}{q}{wg}",
                    r.layout,
                    spmd.chips,
                    spmd.firings,
                    liveness.injections,
                    mem.summary()
                );
            }
            Outcome::Verified(summary) => {
                passes += 1;
                println!("  PASS {:<55} {summary}", r.layout);
            }
            Outcome::Skipped(e) => {
                skips += 1;
                println!("  skip {:<55} {e}", r.layout);
            }
            Outcome::Fail(e) => {
                fails += 1;
                println!("  FAIL {:<55} {e}", r.layout);
            }
        }
    }

    if let Some(path) = json_path {
        let body: Vec<String> = results.iter().map(json_row).collect();
        let doc = format!("[\n{}\n]\n", body.join(",\n"));
        if path == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("esti-lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    println!(
        "\nesti-lint: {passes} passed, {skips} skipped, {warnings} warnings, {fails} failed"
    );
    if fails > 0 || (strict && warnings > 0) {
        std::process::exit(1);
    }
}
