//! Pass 6 — continuous-batching slot lifecycle.
//!
//! Models the [`ContinuousBatcher`](esti_runtime::ContinuousBatcher) serve
//! loop — admission → prefill → decode slot → evict, with fault-triggered
//! replay, priority-first admission, preemption, and replica drains — as an
//! explicit state machine parameterized by the scheduler's own
//! [`BatcherSpec`], and explores it over a bounded family of abstract
//! request traces (mixed generation lengths, queue depths past the slot
//! cap, mid-decode faults, budget-exhausting fault bursts, late-arriving
//! high-priority work, mid-run replica drains). The machine is abstract
//! over token *values* — it tracks, per request, how many tokens are
//! recorded and where the replay cursor stands — which is exactly the
//! state the real scheduler's invariants quantify over:
//!
//! * **no double-occupied slot** — admission only ever fills an empty slot;
//! * **evict only complete** — a slot is released only when its request's
//!   cursor has consumed `max_new_tokens` tokens;
//! * **replay cursor exact** — after a recovery the cursor restarts at
//!   [`BatcherSpec::replay_restarts_at`] (decode replay can never re-derive
//!   the prefill-produced token 0), advances by one per step, replays
//!   (asserts) while behind the recording, and appends past it — so a
//!   request's recording never exceeds `max_new_tokens`;
//! * **recovery budget respected** — a fault past
//!   [`BatcherSpec::max_recoveries`] must surface as a
//!   [`TraceOutcome::RecoveryLimit`], never be absorbed silently;
//! * **preemption replays** — when [`BatcherSpec::preemption`] is set, a
//!   strictly higher class may evict a strictly lower victim; the victim
//!   keeps its recording and must resume with its cursor back at the
//!   replay boundary (resuming at the recording head would leave the
//!   re-prefilled KV cache without the recorded suffix);
//! * **no starvation** — every queued request is eventually admitted; a
//!   scheduler that never serves the low class trips the liveness check;
//! * **drain conservation** — a replica drain evicts every in-flight
//!   request back to the queue with its recording intact (the router
//!   re-dispatches and replays); losing one is caught by request
//!   accounting.
//!
//! [`Defect`] seeds one mutation into the machine (admit into an occupied
//! slot, evict one token early, rewind the replay cursor to 0, ignore the
//! budget, skip the replay after preemption, starve the low class, drop
//! requests at a drain); the unit tests prove each seeded defect is
//! rejected by the corresponding invariant, so the pass demonstrably
//! checks what it claims.

use std::collections::VecDeque;
use std::fmt;

use esti_core::serving::Priority;
use esti_runtime::BatcherSpec;

/// One abstract request: its generation length drives the slot machine,
/// its prompt shape drives the page-pool model, and its class/arrival
/// drive the priority scheduler (token *values* stay opaque — sharing is
/// abstracted as "the first `shared_prefix` tokens are common to every
/// request in the trace").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractRequest {
    /// Tokens the request generates (0 and 1 complete at admission).
    pub max_new_tokens: usize,
    /// Prompt length in tokens (pool model only).
    pub prompt_len: usize,
    /// Leading prompt tokens shared with every other request in the trace;
    /// full pages inside this prefix are refcounted, not copied.
    pub shared_prefix: usize,
    /// Scheduling class: admission is priority-first, FIFO within a class.
    pub priority: Priority,
    /// Successful-step count at which the request arrives (0 = at start).
    pub arrive_at: usize,
}

impl AbstractRequest {
    /// A request with a default-shaped private prompt (the slot-machine
    /// invariants don't depend on prompt shape).
    #[must_use]
    pub fn new(max_new_tokens: usize) -> Self {
        AbstractRequest {
            max_new_tokens,
            prompt_len: 8,
            shared_prefix: 0,
            priority: Priority::Normal,
            arrive_at: 0,
        }
    }

    /// A request with an explicit prompt shape (pool-model traces).
    #[must_use]
    pub fn with_prompt(max_new_tokens: usize, prompt_len: usize, shared_prefix: usize) -> Self {
        assert!(shared_prefix <= prompt_len, "shared prefix cannot exceed the prompt");
        AbstractRequest { prompt_len, shared_prefix, ..AbstractRequest::new(max_new_tokens) }
    }

    /// The same request at an explicit priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The same request arriving at successful-step count `step`.
    #[must_use]
    pub fn arriving_at(mut self, step: usize) -> Self {
        self.arrive_at = step;
        self
    }
}

/// One abstract serving trace: requests (with arrival steps) plus the
/// decode steps at which a fault or a replica drain strikes (indexed by
/// *successful* step count, matching the scheduler's
/// `schedule_decode_fault`; repeats model back-to-back events).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Requests in arrival order.
    pub requests: Vec<AbstractRequest>,
    /// Successful-step counts at which a decode fault strikes, sorted.
    pub faults_at: Vec<usize>,
    /// Successful-step counts at which the serving replica drains: every
    /// in-flight request is re-queued (recording intact) for re-dispatch,
    /// modeling the router's fault-aware failover.
    pub drains_at: Vec<usize>,
}

/// A seeded scheduler mutation, for tests that prove the pass rejects
/// exactly the bug each invariant exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// Admission targets slot 0 unconditionally, clobbering its occupant.
    DoubleAdmit,
    /// Completion fires one token early, evicting an unfinished request.
    EvictIncomplete,
    /// Recovery rewinds the replay cursor to 0 instead of
    /// [`BatcherSpec::replay_restarts_at`].
    ReplayRewind,
    /// Recovery proceeds past [`BatcherSpec::max_recoveries`].
    IgnoreBudget,
    /// Eviction frees a slot's shared prefix pages unconditionally instead
    /// of only at the last reference — the classic refcounting bug a paged
    /// KV pool must not have.
    DoubleFreeSharedPage,
    /// Preemption discards the victim's replay obligation: re-admission
    /// resumes at the recording head instead of replaying from
    /// [`BatcherSpec::replay_restarts_at`], so the re-prefilled KV cache
    /// never contains the recorded suffix.
    PreemptWithoutReplayCursor,
    /// Admission never serves the low-priority class, even with free slots.
    StarveLowPriorityForever,
    /// A replica drain drops its in-flight requests instead of re-queueing
    /// them for re-dispatch.
    LoseRequestOnReplicaDrain,
}

/// How one trace run ended (both are legitimate terminals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Every request completed with exactly its `max_new_tokens` recorded.
    Completed {
        /// Successful decode steps taken.
        steps: usize,
        /// Recoveries absorbed.
        recoveries: usize,
        /// Preemptions performed (victims evicted and later replayed).
        preemptions: usize,
    },
    /// A fault broke the recovery budget and was surfaced, mirroring
    /// `ServeError::RecoveryLimit`.
    RecoveryLimit {
        /// Faults seen, including the one over budget.
        faults: usize,
    },
}

/// An invariant violation found while exploring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// Admission placed a request into an occupied slot.
    DoubleOccupied {
        /// The slot written twice.
        slot: usize,
        /// Request already holding the slot.
        incumbent: usize,
        /// Request admitted over it.
        admitted: usize,
    },
    /// A slot was released before its request consumed all its tokens.
    EvictedIncomplete {
        /// The evicted request.
        request: usize,
        /// Tokens consumed at eviction.
        consumed: usize,
        /// Tokens the request was due.
        want: usize,
    },
    /// Recovery rewound a replay cursor below the prefill boundary: decode
    /// replay cannot re-derive the prefill-produced token 0.
    ReplayRewound {
        /// The replayed request.
        request: usize,
        /// Where the cursor restarted.
        cursor: usize,
        /// Where the spec says it must restart.
        must_restart_at: usize,
    },
    /// A preempted or drained request resumed with its cursor past the
    /// replay boundary: its recorded suffix would never be re-derived into
    /// the rebuilt KV cache.
    ReplaySkipped {
        /// The resumed request.
        request: usize,
        /// Where the cursor resumed.
        cursor: usize,
        /// Where the spec says it must restart.
        must_restart_at: usize,
    },
    /// A recording grew past the request's `max_new_tokens`.
    OverGeneration {
        /// The offending request.
        request: usize,
        /// Tokens recorded.
        recorded: usize,
        /// The request's cap.
        want: usize,
    },
    /// Recovery was attempted with the fault count already past the budget.
    BudgetIgnored {
        /// Faults absorbed so far.
        faults: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A replica drain dropped an in-flight request: it is neither
    /// finished nor queued anywhere for re-dispatch.
    RequestLost {
        /// The dropped request.
        request: usize,
    },
    /// Eviction freed a shared page other requests still reference.
    SharedPageDoubleFreed {
        /// Index of the page inside the shared prefix region.
        page: usize,
        /// References still outstanding when the free happened.
        refs: usize,
    },
    /// Admission charged the page pool past its budget instead of
    /// deferring the request.
    PoolOverflow {
        /// Pages charged.
        used: usize,
        /// The configured pool budget.
        budget: usize,
    },
    /// The machine exceeded its step bound or idled with work queued —
    /// requests are starving.
    Stuck {
        /// Steps taken when the bound tripped.
        steps: usize,
    },
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::DoubleOccupied { slot, incumbent, admitted } => write!(
                f,
                "lifecycle: request {admitted} admitted into slot {slot} still held by \
                 request {incumbent}"
            ),
            LifecycleError::EvictedIncomplete { request, consumed, want } => write!(
                f,
                "lifecycle: request {request} evicted after {consumed}/{want} tokens"
            ),
            LifecycleError::ReplayRewound { request, cursor, must_restart_at } => write!(
                f,
                "lifecycle: request {request} replay cursor restarted at {cursor}, must be \
                 {must_restart_at} (token 0 is prefill-produced)"
            ),
            LifecycleError::ReplaySkipped { request, cursor, must_restart_at } => write!(
                f,
                "lifecycle: request {request} resumed at cursor {cursor}, skipping the replay \
                 from {must_restart_at} that rebuilds its KV cache"
            ),
            LifecycleError::OverGeneration { request, recorded, want } => write!(
                f,
                "lifecycle: request {request} recorded {recorded} tokens, cap {want}"
            ),
            LifecycleError::BudgetIgnored { faults, budget } => write!(
                f,
                "lifecycle: recovery proceeded at fault {faults} past budget {budget}"
            ),
            LifecycleError::RequestLost { request } => write!(
                f,
                "lifecycle: request {request} lost at replica drain — neither finished nor \
                 queued for re-dispatch"
            ),
            LifecycleError::SharedPageDoubleFreed { page, refs } => write!(
                f,
                "lifecycle: shared page {page} freed with {refs} references outstanding"
            ),
            LifecycleError::PoolOverflow { used, budget } => write!(
                f,
                "lifecycle: page pool charged to {used} past its budget of {budget}"
            ),
            LifecycleError::Stuck { steps } => {
                write!(f, "lifecycle: no completion after {steps} steps")
            }
        }
    }
}

/// Successful bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Abstract traces explored.
    pub traces: usize,
    /// Total successful decode steps simulated.
    pub steps: usize,
    /// Total recoveries absorbed.
    pub recoveries: usize,
    /// Total preemptions performed (and replayed to completion).
    pub preemptions: usize,
    /// Traces that (correctly) terminated at the recovery limit.
    pub recovery_limits: usize,
}

/// A request's slot, mirroring the scheduler's `Active` plus its page
/// claim (zeroes when the spec is slab-backed).
#[derive(Debug, Clone, Copy)]
struct Slot {
    idx: usize,
    /// Position of the next sample (`Active::consumed`).
    cursor: usize,
    /// Full shared-prefix pages this slot references.
    shared_pages: usize,
    /// Pages owned by this slot alone (private prompt tail + worst-case
    /// decode growth, charged at admission like the scheduler's ledger).
    private_pages: usize,
}

/// The refcounted page pool the machine models when
/// [`BatcherSpec::page_size`] is set: per-shared-page reference counts
/// (page `i` covers shared tokens `[i*S, (i+1)*S)`) plus a total-usage
/// counter gated by [`BatcherSpec::pool_pages`].
#[derive(Debug, Default)]
struct Pool {
    shared_refs: Vec<usize>,
    used: usize,
}

impl Pool {
    /// `(shared pages, private pages, admission charge)` for one request —
    /// already-referenced shared pages charge nothing.
    fn plan(&self, r: &AbstractRequest, page_size: usize) -> (usize, usize, usize) {
        let total = (r.prompt_len + r.max_new_tokens).div_ceil(page_size);
        let shared = (r.shared_prefix / page_size).min(total);
        let private = total - shared;
        let new_shared =
            (0..shared).filter(|&p| self.shared_refs.get(p).is_none_or(|&c| c == 0)).count();
        (shared, private, new_shared + private)
    }

    fn admit(&mut self, shared: usize, private: usize) {
        if self.shared_refs.len() < shared {
            self.shared_refs.resize(shared, 0);
        }
        for p in 0..shared {
            if self.shared_refs[p] == 0 {
                self.used += 1;
            }
            self.shared_refs[p] += 1;
        }
        self.used += private;
    }

    /// Releases a slot's claim; `defect` frees shared pages eagerly, which
    /// the refcount check turns into the invariant violation.
    fn release(
        &mut self,
        slot: &Slot,
        double_free: bool,
    ) -> Result<(), LifecycleError> {
        for p in 0..slot.shared_pages {
            let refs = self.shared_refs[p];
            if double_free && refs > 1 {
                return Err(LifecycleError::SharedPageDoubleFreed { page: p, refs });
            }
            self.shared_refs[p] -= 1;
            if self.shared_refs[p] == 0 {
                self.used -= 1;
            }
        }
        self.used -= slot.private_pages;
        Ok(())
    }
}

/// Run one trace through the slot machine described by `spec`, optionally
/// seeding one `defect`, checking every invariant along the way.
///
/// # Errors
///
/// The first [`LifecycleError`] observed.
#[allow(clippy::too_many_lines)] // one function = one faithful serve loop.
pub fn run_trace(
    spec: &BatcherSpec,
    trace: &Trace,
    defect: Option<Defect>,
) -> Result<TraceOutcome, LifecycleError> {
    assert!(spec.slots > 0, "slot machine needs at least one slot");
    let n = trace.requests.len();
    let mut recorded = vec![0usize; n];
    let mut finished = vec![false; n];
    let mut future: VecDeque<usize> = {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| trace.requests[i].arrive_at);
        order.into()
    };
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<Option<Slot>> = vec![None; spec.slots];
    let mut faults: VecDeque<usize> = trace.faults_at.iter().copied().collect();
    let mut drains: VecDeque<usize> = trace.drains_at.iter().copied().collect();
    let mut faults_used = 0usize;
    let mut steps_done = 0usize;
    let mut recoveries = 0usize;
    let mut preemptions = 0usize;
    let mut pool = Pool::default();

    // Liveness bound: every request needs at most max_new_tokens steps;
    // every recovery, drain, and preemption can replay them all once more.
    let work: usize = trace.requests.iter().map(|r| r.max_new_tokens).sum();
    let disruptions = trace.faults_at.len() + trace.drains_at.len() + n;
    let bound = (work + 1) * (disruptions + 1) + n + 1;
    let mut attempts = 0usize;

    loop {
        // Arrivals whose step has come join the queue (FIFO within class).
        while let Some(&idx) = future.front() {
            if trace.requests[idx].arrive_at > steps_done {
                break;
            }
            future.pop_front();
            pending.push_back(idx);
        }

        // Replica drain? Every in-flight request is evicted back to the
        // *front* of the queue with its recording intact — the router
        // re-dispatches it to a healthy replica, which replays. The
        // defective machine drops them; request conservation catches it.
        if drains.front() == Some(&steps_done) {
            drains.pop_front();
            let mut evicted: Vec<usize> = Vec::new();
            for slot in &mut active {
                if let Some(s) = slot.take() {
                    pool.release(&s, false)?;
                    evicted.push(s.idx);
                }
            }
            if defect != Some(Defect::LoseRequestOnReplicaDrain) {
                for &idx in evicted.iter().rev() {
                    pending.push_front(idx);
                }
            }
            for (idx, done) in finished.iter().enumerate() {
                if !done && !pending.contains(&idx) && !future.contains(&idx) {
                    return Err(LifecycleError::RequestLost { request: idx });
                }
            }
        }

        // Admission at the step boundary: highest waiting class first,
        // FIFO within a class; when no slot is free a strictly higher
        // class may preempt a strictly lower victim.
        loop {
            let mut picked: Option<usize> = None; // position in `pending`
            for &class in Priority::ALL.iter().rev() {
                if class == Priority::Low && defect == Some(Defect::StarveLowPriorityForever) {
                    continue;
                }
                picked = pending.iter().position(|&i| trace.requests[i].priority == class);
                if picked.is_some() {
                    break;
                }
            }
            let Some(mut pos) = picked else { break };
            let idx = pending[pos];
            let class = trace.requests[idx].priority;
            let slot = if defect == Some(Defect::DoubleAdmit) {
                Some(0)
            } else {
                active.iter().position(Option::is_none)
            };
            let slot = match slot {
                Some(s) => s,
                None if spec.preemption => {
                    // Victim: the strictly lower-priority occupant with the
                    // least recorded progress (cheapest replay), evicted
                    // back to the queue front with its recording intact.
                    let victim = active
                        .iter()
                        .enumerate()
                        .filter_map(|(s, e)| e.as_ref().map(|e| (s, e.idx)))
                        .filter(|&(_, v)| trace.requests[v].priority < class)
                        .min_by_key(|&(s, v)| (trace.requests[v].priority, recorded[v], s));
                    let Some((s, _)) = victim else { break };
                    if let Some(e) = active[s].take() {
                        pool.release(&e, false)?;
                        pending.push_front(e.idx);
                        pos += 1; // the pick shifted right by the push_front
                        preemptions += 1;
                    }
                    s
                }
                None => break,
            };
            let want = trace.requests[idx].max_new_tokens;
            let occupies = want > usize::from(spec.prefill_emits_first_token);
            // Page-pool admission gate, mirroring the scheduler's ledger:
            // requests that will occupy a slot charge their unshared pages
            // (worst case, prompt plus full generation) and defer when the
            // budget cannot cover them.
            let mut claim = (0usize, 0usize);
            if let (Some(page_size), true) = (spec.page_size, occupies) {
                let (shared, private, charge) = pool.plan(&trace.requests[idx], page_size);
                if let Some(budget) = spec.pool_pages {
                    if pool.used + charge > budget {
                        if active.iter().all(Option::is_none) {
                            // Alone and still over budget: starvation
                            // (arrivals only add load, never free pages).
                            return Err(LifecycleError::Stuck { steps: steps_done });
                        }
                        break; // Defer until eviction frees pages.
                    }
                }
                claim = (shared, private);
            }
            pending.remove(pos);
            // A resumed request (preempted or drained victim) keeps its
            // recording; only a first admission's prefill emits token 0.
            let resumed = recorded[idx] > 0;
            if !resumed && spec.prefill_emits_first_token && want > 0 {
                recorded[idx] += 1;
            }
            if !occupies {
                // Completes at admission; never occupies a decode slot.
                finished[idx] = true;
                continue;
            }
            if let Some(incumbent) = active[slot] {
                return Err(LifecycleError::DoubleOccupied {
                    slot,
                    incumbent: incumbent.idx,
                    admitted: idx,
                });
            }
            if spec.page_size.is_some() {
                pool.admit(claim.0, claim.1);
                if let Some(budget) = spec.pool_pages {
                    if pool.used > budget {
                        return Err(LifecycleError::PoolOverflow { used: pool.used, budget });
                    }
                }
            }
            let cursor = if resumed {
                if defect == Some(Defect::PreemptWithoutReplayCursor) {
                    recorded[idx] // skip the replay entirely
                } else {
                    spec.replay_restarts_at
                }
            } else {
                usize::from(spec.prefill_emits_first_token)
            };
            // Replay-boundary invariant: a resumed request with recorded
            // decode tokens must restart at the spec boundary and replay
            // its suffix into the rebuilt KV cache.
            if resumed
                && recorded[idx] > spec.replay_restarts_at
                && cursor != spec.replay_restarts_at
            {
                return Err(LifecycleError::ReplaySkipped {
                    request: idx,
                    cursor,
                    must_restart_at: spec.replay_restarts_at,
                });
            }
            active[slot] =
                Some(Slot { idx, cursor, shared_pages: claim.0, private_pages: claim.1 });
        }

        if active.iter().all(Option::is_none) {
            if pending.is_empty() && future.is_empty() {
                break;
            }
            if pending.is_empty() {
                // Idle gap before the next arrival: jump the step clock.
                if let Some(next) = future.iter().map(|&i| trace.requests[i].arrive_at).min() {
                    steps_done = steps_done.max(next);
                }
                attempts += 1;
                if attempts > bound {
                    return Err(LifecycleError::Stuck { steps: steps_done });
                }
                continue;
            }
            // Work is queued, slots are free, yet nothing was admitted:
            // the scheduler is starving its queue.
            return Err(LifecycleError::Stuck { steps: steps_done });
        }

        attempts += 1;
        if attempts > bound {
            return Err(LifecycleError::Stuck { steps: steps_done });
        }

        // Mid-decode fault? Strike before the step completes.
        if faults.front() == Some(&steps_done) {
            faults.pop_front();
            faults_used += 1;
            if faults_used > spec.max_recoveries {
                if defect == Some(Defect::IgnoreBudget) {
                    return Err(LifecycleError::BudgetIgnored {
                        faults: faults_used,
                        budget: spec.max_recoveries,
                    });
                }
                return Ok(TraceOutcome::RecoveryLimit { faults: faults_used });
            }
            recoveries += 1;
            // Rebuild + replay: every in-flight request keeps its slot and
            // recording; its cursor restarts at the replay boundary.
            for entry in active.iter_mut().flatten() {
                let restart = if defect == Some(Defect::ReplayRewind) {
                    0
                } else {
                    spec.replay_restarts_at
                };
                if spec.prefill_emits_first_token
                    && recorded[entry.idx] > 0
                    && restart < spec.replay_restarts_at
                {
                    return Err(LifecycleError::ReplayRewound {
                        request: entry.idx,
                        cursor: restart,
                        must_restart_at: spec.replay_restarts_at,
                    });
                }
                entry.cursor = restart;
            }
            continue; // retry the step
        }

        // One decode step over the slot batch.
        steps_done += 1;
        for slot in &mut active {
            let Some(s) = slot else { continue };
            let idx = s.idx;
            let want = trace.requests[idx].max_new_tokens;
            if s.cursor < recorded[idx] {
                // Replay: the recomputed sample is asserted against its
                // recording; nothing is appended.
            } else {
                recorded[idx] += 1;
                if recorded[idx] > want {
                    return Err(LifecycleError::OverGeneration {
                        request: idx,
                        recorded: recorded[idx],
                        want,
                    });
                }
            }
            s.cursor += 1;
            let done_at = if defect == Some(Defect::EvictIncomplete) {
                want.saturating_sub(1)
            } else {
                want
            };
            if s.cursor >= done_at {
                // Eviction: the invariant the pass enforces.
                if s.cursor < want || recorded[idx] < want {
                    return Err(LifecycleError::EvictedIncomplete {
                        request: idx,
                        consumed: s.cursor,
                        want,
                    });
                }
                finished[idx] = true;
                if let Some(s) = slot.take() {
                    pool.release(&s, defect == Some(Defect::DoubleFreeSharedPage))?;
                }
            }
        }
    }

    for idx in 0..n {
        let want = trace.requests[idx].max_new_tokens;
        if !finished[idx] || recorded[idx] != want {
            return Err(LifecycleError::Stuck { steps: steps_done });
        }
    }
    Ok(TraceOutcome::Completed { steps: steps_done, recoveries, preemptions })
}

/// The bounded trace family `check_lifecycle` explores: generation-length
/// mixes around the slot cap (including admission-complete lengths 0 and 1
/// interleaved with long runs), fault-free runs, single faults at each
/// early step, fault bursts, a budget-exhausting burst, late-arriving
/// high-priority work that preempts a low fleet, three-class mixes, and
/// mid-run replica drains (alone and stacked with faults or preemption).
fn builtin_traces(spec: &BatcherSpec) -> Vec<Trace> {
    let s = spec.slots;
    let length_sets: Vec<Vec<usize>> = vec![
        vec![1],
        vec![0],
        vec![3],
        vec![0, 1, 2, 3],
        vec![4; s + 2],              // queue deeper than the slot cap
        (0..=s + 1).collect(),       // staggered completions free slots mid-run
        vec![2, 5, 1, 4, 0, 3],
    ];
    let fault_sets: Vec<Vec<usize>> = vec![
        vec![],
        vec![0],
        vec![1],
        vec![2],
        vec![0, 0],                  // back-to-back faults on one step
        vec![1, 2],
        vec![0; spec.max_recoveries + 1], // must trip the budget
    ];
    let mut traces = Vec::new();
    for lengths in &length_sets {
        for faults in &fault_sets {
            traces.push(Trace {
                requests: lengths.iter().map(|&l| AbstractRequest::new(l)).collect(),
                faults_at: faults.clone(),
                drains_at: vec![],
            });
        }
    }
    // Priority + preemption: a low fleet fills every slot, then a
    // high-priority request arrives mid-run and (with spec.preemption)
    // evicts the least-progressed victim, which later replays. Stacked
    // with faults so replay-after-preemption and replay-after-recovery
    // interleave.
    let low_fleet = |len: usize| -> Vec<AbstractRequest> {
        (0..s).map(|_| AbstractRequest::new(len).with_priority(Priority::Low)).collect()
    };
    for faults in [vec![], vec![2], vec![2, 2]] {
        let mut reqs = low_fleet(6);
        reqs.push(AbstractRequest::new(3).with_priority(Priority::High).arriving_at(1));
        traces.push(Trace { requests: reqs, faults_at: faults, drains_at: vec![] });
    }
    // Three classes with staggered arrivals: the late high jumps the late
    // low in the queue.
    let mut mixed = vec![AbstractRequest::new(4); s];
    mixed.push(AbstractRequest::new(2).with_priority(Priority::High).arriving_at(1));
    mixed.push(AbstractRequest::new(2).with_priority(Priority::Low).arriving_at(1));
    traces.push(Trace { requests: mixed, faults_at: vec![], drains_at: vec![] });
    // Replica drains: a full fleet re-queued mid-run, a drain stacked with
    // a later fault, and a drain landing on a preempted fleet.
    traces.push(Trace {
        requests: vec![AbstractRequest::new(4); s + 2],
        faults_at: vec![],
        drains_at: vec![2],
    });
    traces.push(Trace {
        requests: vec![AbstractRequest::new(5); s],
        faults_at: vec![3],
        drains_at: vec![2],
    });
    {
        let mut reqs = low_fleet(6);
        reqs.push(AbstractRequest::new(4).with_priority(Priority::High).arriving_at(1));
        traces.push(Trace { requests: reqs, faults_at: vec![], drains_at: vec![3] });
    }
    // Pooled traces: a shared-prefix fleet deeper than the slot cap, with
    // staggered completions (so shared pages drop references one by one),
    // with a mid-run fault (so replay re-admits against the pool), with a
    // drain (so the whole fleet releases and re-charges), and with a
    // high-priority preemptor (victim pages release and re-charge).
    if let Some(page_size) = spec.page_size {
        let shared = 2 * page_size;
        let fleet = |lens: &[usize]| -> Vec<AbstractRequest> {
            lens.iter()
                .map(|&l| AbstractRequest::with_prompt(l, shared + page_size / 2 + 1, shared))
                .collect()
        };
        let staggered: Vec<usize> = (2..2 + s + 2).collect();
        let uniform = vec![3; s + 2];
        traces.push(Trace { requests: fleet(&staggered), faults_at: vec![], drains_at: vec![] });
        traces.push(Trace { requests: fleet(&staggered), faults_at: vec![1], drains_at: vec![] });
        traces.push(Trace { requests: fleet(&uniform), faults_at: vec![], drains_at: vec![] });
        traces.push(Trace { requests: fleet(&staggered), faults_at: vec![], drains_at: vec![2] });
        let mut pooled_preempt: Vec<AbstractRequest> = fleet(&vec![5; s])
            .into_iter()
            .map(|r| r.with_priority(Priority::Low))
            .collect();
        pooled_preempt.push(
            AbstractRequest::with_prompt(3, shared + page_size / 2 + 1, shared)
                .with_priority(Priority::High)
                .arriving_at(1),
        );
        traces.push(Trace { requests: pooled_preempt, faults_at: vec![], drains_at: vec![] });
    }
    traces
}

/// Explore the slot machine of `spec` over the builtin bounded trace
/// family with no seeded defect.
///
/// # Errors
///
/// The first [`LifecycleError`] any trace exposes.
pub fn check_lifecycle(spec: &BatcherSpec) -> Result<LifecycleReport, LifecycleError> {
    let mut report = LifecycleReport {
        traces: 0,
        steps: 0,
        recoveries: 0,
        preemptions: 0,
        recovery_limits: 0,
    };
    for trace in builtin_traces(spec) {
        report.traces += 1;
        match run_trace(spec, &trace, None)? {
            TraceOutcome::Completed { steps, recoveries, preemptions } => {
                report.steps += steps;
                report.recoveries += recoveries;
                report.preemptions += preemptions;
            }
            TraceOutcome::RecoveryLimit { .. } => report.recovery_limits += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BatcherSpec {
        BatcherSpec {
            slots: 4,
            max_recoveries: 3,
            prefill_emits_first_token: true,
            replay_restarts_at: 1,
            page_size: Some(esti_runtime::DEFAULT_KV_PAGE_SIZE),
            pool_pages: None,
            preemption: true,
        }
    }

    fn trace(lengths: &[usize], faults: &[usize]) -> Trace {
        Trace {
            requests: lengths.iter().map(|&l| AbstractRequest::new(l)).collect(),
            faults_at: faults.to_vec(),
            drains_at: vec![],
        }
    }

    /// A low fleet filling every slot plus a high-priority request
    /// arriving after two decode steps — the canonical preemption setup.
    fn preemption_trace(s: &BatcherSpec) -> Trace {
        let mut reqs: Vec<AbstractRequest> = (0..s.slots)
            .map(|_| AbstractRequest::new(6).with_priority(Priority::Low))
            .collect();
        reqs.push(AbstractRequest::new(3).with_priority(Priority::High).arriving_at(2));
        Trace { requests: reqs, faults_at: vec![], drains_at: vec![] }
    }

    #[test]
    fn builtin_family_is_clean() {
        let report = check_lifecycle(&spec()).unwrap();
        assert!(report.traces >= 40, "bounded family should be substantial");
        assert!(report.steps > 0);
        assert!(report.recoveries > 0, "mid-decode faults must be exercised");
        assert!(report.preemptions > 0, "priority preemption must be exercised");
        assert!(report.recovery_limits > 0, "budget-exhausting bursts must be exercised");
    }

    #[test]
    fn single_slot_spec_is_clean_too() {
        let one = BatcherSpec { slots: 1, ..spec() };
        check_lifecycle(&one).unwrap();
    }

    #[test]
    fn budget_burst_surfaces_recovery_limit() {
        let s = spec();
        let t = trace(&[5], &[0, 0, 0, 0]); // max_recoveries = 3, 4th fault breaks it
        match run_trace(&s, &t, None).unwrap() {
            TraceOutcome::RecoveryLimit { faults } => assert_eq!(faults, 4),
            other => panic!("expected RecoveryLimit, got {other:?}"),
        }
    }

    #[test]
    fn double_admit_defect_rejected() {
        // The ISSUE's seeded "double-occupied slot" mutation.
        let s = spec();
        let err = run_trace(&s, &trace(&[4, 4], &[]), Some(Defect::DoubleAdmit)).unwrap_err();
        match err {
            LifecycleError::DoubleOccupied { slot, incumbent, admitted } => {
                assert_eq!(slot, 0);
                assert_eq!(incumbent, 0);
                assert_eq!(admitted, 1);
            }
            other => panic!("expected DoubleOccupied, got {other}"),
        }
    }

    #[test]
    fn evict_incomplete_defect_rejected() {
        let s = spec();
        let err =
            run_trace(&s, &trace(&[3], &[]), Some(Defect::EvictIncomplete)).unwrap_err();
        match err {
            LifecycleError::EvictedIncomplete { request, consumed, want } => {
                assert_eq!(request, 0);
                assert_eq!(want, 3);
                assert!(consumed < want, "{consumed} < {want}");
            }
            other => panic!("expected EvictedIncomplete, got {other}"),
        }
    }

    #[test]
    fn replay_rewind_defect_rejected() {
        let s = spec();
        let err = run_trace(&s, &trace(&[4], &[1]), Some(Defect::ReplayRewind)).unwrap_err();
        assert!(
            matches!(err, LifecycleError::ReplayRewound { request: 0, cursor: 0, .. }),
            "got {err}"
        );
    }

    #[test]
    fn ignore_budget_defect_rejected() {
        let s = spec();
        let t = trace(&[5], &[0, 0, 0, 0]);
        let err = run_trace(&s, &t, Some(Defect::IgnoreBudget)).unwrap_err();
        assert!(
            matches!(err, LifecycleError::BudgetIgnored { faults: 4, budget: 3 }),
            "got {err}"
        );
    }

    #[test]
    fn replay_after_fault_reproduces_exactly_the_recording() {
        // A fault mid-stream: the request replays its recorded prefix and
        // still ends with exactly max_new_tokens recorded.
        let s = spec();
        match run_trace(&s, &trace(&[6, 2, 0], &[2]), None).unwrap() {
            TraceOutcome::Completed { recoveries, .. } => assert_eq!(recoveries, 1),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn preemption_evicts_one_victim_and_replays_it_to_completion() {
        // The high arrival finds every slot held by a lower class: exactly
        // one victim is evicted, later re-admitted, and its replayed
        // recording still ends exact (recorded == max_new_tokens is
        // checked for every request at termination).
        let s = spec();
        match run_trace(&s, &preemption_trace(&s), None).unwrap() {
            TraceOutcome::Completed { preemptions, .. } => assert_eq!(preemptions, 1),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn preemption_disabled_spec_waits_instead() {
        let s = BatcherSpec { preemption: false, ..spec() };
        match run_trace(&s, &preemption_trace(&s), None).unwrap() {
            TraceOutcome::Completed { preemptions, .. } => assert_eq!(preemptions, 0),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn preempt_without_replay_cursor_defect_rejected() {
        // The ISSUE's seeded preemption mutation: the victim (3 tokens
        // recorded when evicted) resumes at its recording head instead of
        // replaying from the boundary.
        let s = spec();
        let err =
            run_trace(&s, &preemption_trace(&s), Some(Defect::PreemptWithoutReplayCursor))
                .unwrap_err();
        match err {
            LifecycleError::ReplaySkipped { cursor, must_restart_at, .. } => {
                assert_eq!(must_restart_at, 1);
                assert!(cursor > must_restart_at, "skipped to {cursor}");
            }
            other => panic!("expected ReplaySkipped, got {other}"),
        }
    }

    #[test]
    fn starve_low_priority_forever_defect_rejected() {
        // Two highs complete, slots sit free, and the defective scheduler
        // still never admits the low request: the liveness check trips.
        let s = spec();
        let t = Trace {
            requests: vec![
                AbstractRequest::new(2).with_priority(Priority::High),
                AbstractRequest::new(2).with_priority(Priority::High),
                AbstractRequest::new(3).with_priority(Priority::Low),
            ],
            faults_at: vec![],
            drains_at: vec![],
        };
        let err = run_trace(&s, &t, Some(Defect::StarveLowPriorityForever)).unwrap_err();
        assert!(matches!(err, LifecycleError::Stuck { .. }), "got {err}");
    }

    #[test]
    fn lose_request_on_replica_drain_defect_rejected() {
        // The ISSUE's seeded drain mutation: the drain drops its in-flight
        // requests; conservation catches the first one missing.
        let s = spec();
        let t = Trace {
            requests: vec![AbstractRequest::new(5), AbstractRequest::new(5)],
            faults_at: vec![],
            drains_at: vec![1],
        };
        let err = run_trace(&s, &t, Some(Defect::LoseRequestOnReplicaDrain)).unwrap_err();
        assert!(matches!(err, LifecycleError::RequestLost { request: 0 }), "got {err}");
    }

    #[test]
    fn drain_requeues_every_in_flight_request() {
        // A correct drain loses nothing: the whole fleet is re-queued,
        // replayed, and completes with exact recordings.
        let s = spec();
        let t = Trace {
            requests: vec![AbstractRequest::new(5); 6],
            faults_at: vec![],
            drains_at: vec![2],
        };
        run_trace(&s, &t, None).unwrap();
    }

    #[test]
    fn pool_budget_defers_admission_until_pages_free() {
        // page_size 4, shared prefix 8 (= 2 shared pages). Each request:
        // prompt 8 + max_new 3 → 3 pages total, 1 private. First admission
        // charges 3, later ones 1. Budget 4 fits two concurrent requests;
        // the third must wait for both to finish (its charge re-counts the
        // then-freed shared pages). Deferral serializes: ≥ 4 steps instead
        // of the 2 a parallel run would take.
        let s = BatcherSpec { page_size: Some(4), pool_pages: Some(4), ..spec() };
        let reqs = vec![AbstractRequest::with_prompt(3, 8, 8); 3];
        let t = Trace { requests: reqs, faults_at: vec![], drains_at: vec![] };
        match run_trace(&s, &t, None).unwrap() {
            TraceOutcome::Completed { steps, .. } => {
                assert!(steps >= 4, "deferred admission must serialize: {steps} steps");
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn oversized_request_starves_instead_of_overflowing() {
        let s = BatcherSpec { page_size: Some(4), pool_pages: Some(2), ..spec() };
        let t = Trace {
            requests: vec![AbstractRequest::with_prompt(4, 12, 0)],
            faults_at: vec![],
            drains_at: vec![],
        };
        assert!(matches!(run_trace(&s, &t, None), Err(LifecycleError::Stuck { .. })));
    }

    #[test]
    fn double_free_shared_page_defect_rejected() {
        // The ISSUE's seeded refcounting mutation: two requests share two
        // full prefix pages; the short one completes first, and the
        // defective machine frees the shared pages outright while the long
        // one still references them.
        let s = BatcherSpec { page_size: Some(4), ..spec() };
        let t = Trace {
            requests: vec![
                AbstractRequest::with_prompt(2, 8, 8),
                AbstractRequest::with_prompt(6, 8, 8),
            ],
            faults_at: vec![],
            drains_at: vec![],
        };
        let err = run_trace(&s, &t, Some(Defect::DoubleFreeSharedPage)).unwrap_err();
        match err {
            LifecycleError::SharedPageDoubleFreed { page, refs } => {
                assert_eq!(page, 0);
                assert_eq!(refs, 2);
            }
            other => panic!("expected SharedPageDoubleFreed, got {other}"),
        }
    }

    #[test]
    fn correct_refcounting_passes_where_the_defect_fails() {
        let s = BatcherSpec { page_size: Some(4), ..spec() };
        let t = Trace {
            requests: vec![
                AbstractRequest::with_prompt(2, 8, 8),
                AbstractRequest::with_prompt(6, 8, 8),
            ],
            faults_at: vec![],
            drains_at: vec![],
        };
        run_trace(&s, &t, None).unwrap();
    }

    #[test]
    fn spec_matches_the_live_scheduler() {
        // Anti-drift: the literal spec the lint sweep uses must be what a
        // real ContinuousBatcher reports.
        use esti_core::planner::decode_layout;
        use esti_core::Machine;
        use esti_model::{ModelConfig, ReferenceModel};
        use esti_runtime::{ContinuousBatcher, ServingOptions, WeightFormat};
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
        let machine = Machine::tpu_v4_slice(4).unwrap();
        let layout = decode_layout(model.config(), &machine);
        let batcher =
            ContinuousBatcher::new(&model, layout, WeightFormat::Exact, ServingOptions::default());
        assert_eq!(batcher.spec(), spec());
    }
}
