//! Static partition-plan and SPMD collective-schedule analyzer.
//!
//! Three passes over the partitioning layouts of Pope et al. (MLSYS 2023),
//! run without executing the runtime:
//!
//! * [`algebra`] — chains each layout's sharding specs through its
//!   analytic communication pieces under the rewrite rules of Section 3.2,
//!   checking divisibility, axis disjointness, partial-sum resolution, and
//!   piece-by-piece spec continuity;
//! * [`spmd`] — extracts the per-chip collective sequence from the
//!   symbolic schedule ([`esti_core::schedule`]) and proves every
//!   communication group's members issue identical sequences (no shape or
//!   op mismatch, no deadlock);
//! * [`memfit`] — sums weight-shard, KV-cache, and activation bytes per
//!   chip against the esti-hal HBM capacity, reporting margins and
//!   weight-gathered working-set warnings.
//!
//! The `esti-lint` binary sweeps every built-in layout × model × slice
//! combination ([`scenarios`]) and exits nonzero on any failure.

pub mod algebra;
pub mod memfit;
pub mod scenarios;
pub mod spmd;

pub use algebra::check_layout_algebra;
pub use memfit::{check_memory_fit, MemReport};
pub use scenarios::{builtin_scenarios, run_all, ComboResult, Outcome, Scenario};
pub use spmd::{check_schedule_spmd, check_spmd, per_chip_program, SpmdError, SpmdReport};
