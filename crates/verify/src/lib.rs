//! Static partition-plan and SPMD collective-schedule analyzer.
//!
//! Six passes over the partitioning layouts of Pope et al. (MLSYS 2023),
//! run without executing the runtime:
//!
//! * [`algebra`] — chains each layout's sharding specs through its
//!   analytic communication pieces under the rewrite rules of Section 3.2,
//!   checking divisibility, axis disjointness, partial-sum resolution, and
//!   piece-by-piece spec continuity;
//! * [`spmd`] — extracts the per-chip collective sequence from the
//!   symbolic schedule ([`esti_core::schedule`]) and proves every
//!   communication group's members issue identical sequences (no shape,
//!   op, or wire-format mismatch, no deadlock);
//! * [`memfit`] — sums weight-shard, KV-cache, and activation bytes per
//!   chip against the esti-hal HBM capacity, reporting margins and
//!   weight-gathered working-set warnings;
//! * [`liveness`] — injects every single crash/stall fault into the
//!   per-chip programs and explores the barrier/deadline/cancel protocol
//!   ([`esti_collectives::ProtocolModel`]) to prove every surviving rank
//!   terminates with a typed error — no hang, no post into a cancelled
//!   group;
//! * [`quantflow`] — tracks dtype and per-column scale provenance through
//!   int8-annotated schedules, rejecting double-applied or dropped scales
//!   and wire volumes that disagree with the traffic ledger's closed form;
//! * [`lifecycle`] — explores the continuous-batching slot state machine
//!   ([`esti_runtime::BatcherSpec`]) over abstract request traces with
//!   mid-decode faults, checking slot occupancy, eviction, replay-cursor,
//!   and recovery-budget invariants.
//!
//! The `esti-lint` binary sweeps every built-in layout × model × slice
//! combination ([`scenarios`]) and exits nonzero on any failure (or, with
//! `--strict`, on any warning); `--json` emits the machine-readable report.

pub mod algebra;
pub mod lifecycle;
pub mod liveness;
pub mod memfit;
pub mod quantflow;
pub mod scenarios;
pub mod spmd;

pub use algebra::check_layout_algebra;
pub use lifecycle::{check_lifecycle, Defect, LifecycleError, LifecycleReport};
pub use liveness::{
    check_liveness, check_schedule_liveness, AbstractFault, FaultSite, LivenessError,
    LivenessReport,
};
pub use memfit::{check_memory_fit, check_memory_fit_paged, paged_pool_pages, MemReport, PagedRequest};
pub use quantflow::{check_schedule_quantflow, QuantflowError, QuantflowReport};
pub use scenarios::{builtin_scenarios, run_all, ComboResult, Outcome, Scenario};
pub use spmd::{check_schedule_spmd, check_spmd, per_chip_program, SpmdError, SpmdReport};
