//! Pass 5 — quantized-dataflow conformance (dtype and scale provenance).
//!
//! Section 3.6 moves int8 weights *in their wire format*: 1-byte values
//! plus one f32 scale per output column, dequantized only at the point of
//! use. That discipline has two failure modes the type system cannot see:
//!
//! * **scale misapplication** — a per-column scale folded into the result
//!   more than once (e.g. scaling a shared accumulator once per pipeline
//!   chunk of a row-gathered stream) or not at all (a quantized stream the
//!   executor has no scale-application plan for);
//! * **wire-volume drift** — the schedule's implied quantized byte count
//!   disagreeing with the closed form the traffic ledger charges
//!   ([`esti_collectives::quant_wire_bytes`]), e.g. an "int8" stream that
//!   actually moves more bytes than the dense bf16 path it replaces.
//!
//! This pass walks every [`WireFormat::Int8`]-annotated collective of a
//! schedule (see `Plan::with_weight_dtype`) and checks it against the
//! runtime's stream table ([`esti_runtime::wg_stream_plan`]): the step must
//! be a weight all-gather the executor knows, gathered along the dimension
//! the stream's shards are sharded on, with a scale discipline that applies
//! each per-column scale exactly once; and its chunked wire volume must
//! match the ledger's closed form while staying strictly below the dense
//! volume it replaces.

use std::fmt;

use esti_collectives::{quant_wire_bytes, ACT_BYTES};
use esti_core::schedule::{Schedule, Step, SymOp, WireFormat};
use esti_runtime::{wg_stream_plan, ScaleDiscipline, WgStream};

/// Successful quant-dataflow check of one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantflowReport {
    /// Int8-annotated collective steps checked (0 for schedules that move
    /// no quantized weights, e.g. non-weight-gathered layouts).
    pub quant_steps: usize,
    /// Distinct executor streams those steps covered.
    pub streams_covered: usize,
    /// Total per-chip quantized wire bytes implied by the schedule
    /// (ledger closed form, summed over chunks and steps).
    pub quant_bytes: usize,
    /// Dense bf16 bytes the same gathers would move unquantized.
    pub dense_bytes: usize,
}

impl QuantflowReport {
    /// Quantized-to-dense wire ratio (1.0 when nothing is quantized).
    #[must_use]
    pub fn wire_ratio(&self) -> f64 {
        if self.dense_bytes == 0 {
            1.0
        } else {
            // Byte counts are far below 2^52; the casts are exact.
            #[allow(clippy::cast_precision_loss)]
            {
                self.quant_bytes as f64 / self.dense_bytes as f64
            }
        }
    }
}

/// Why the quant-dataflow check rejected a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantflowError {
    /// An int8 wire annotation on a collective that is not an all-gather:
    /// only weight gathers move the quantized format.
    NotAllGather {
        /// Offending step label.
        label: &'static str,
    },
    /// A quantized stream the executor has no entry for — its per-column
    /// scales would never be applied (dropped).
    DroppedScales {
        /// Offending step label.
        label: &'static str,
    },
    /// Quantized shards store as matrices (leading dim = rows, trailing
    /// dims flattened into columns carrying the scales); a sub-matrix
    /// tensor has no scale axis.
    NotAMatrix {
        /// Offending step label.
        label: &'static str,
        /// The local shape found.
        shape: Vec<usize>,
    },
    /// The schedule gathers along one dimension but the executor's stream
    /// is sharded along another — scale provenance would not line up.
    GatherDimMismatch {
        /// Offending step label.
        label: &'static str,
        /// Dimension the executor's stream gathers (0 = rows, 1 = cols).
        stream_dim: usize,
        /// Dimension the schedule gathers.
        schedule_dim: usize,
    },
    /// A per-column scale would be folded in `applications` times instead
    /// of exactly once (the double-applied-scale defect: per-slice scaling
    /// of a row-gathered stream multiplies the shared accumulator once per
    /// chunk).
    ScaleMisapplied {
        /// Offending step label.
        label: &'static str,
        /// How many times each scale would be applied.
        applications: usize,
    },
    /// The pipeline chunk count does not divide the chunked dimension.
    ChunkIndivisible {
        /// Offending step label.
        label: &'static str,
        /// Chunk count.
        chunks: usize,
        /// Extent being divided.
        extent: usize,
    },
    /// The quantized wire volume is not strictly below the dense volume it
    /// replaces — the int8 annotation is an accounting lie.
    WireVolumeMismatch {
        /// Offending step label.
        label: &'static str,
        /// Quantized bytes (ledger closed form).
        quant: usize,
        /// Dense bf16 bytes.
        dense: usize,
    },
    /// Schedule extraction failed (shape not divisible on the torus).
    Extraction(String),
}

impl fmt::Display for QuantflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantflowError::NotAllGather { label } => {
                write!(f, "quantflow: \"{label}\" moves int8 wire but is not an all-gather")
            }
            QuantflowError::DroppedScales { label } => write!(
                f,
                "quantflow: \"{label}\" is quantized but no executor stream applies its \
                 scales (dropped per-column scales)"
            ),
            QuantflowError::NotAMatrix { label, shape } => write!(
                f,
                "quantflow: \"{label}\" quantized shard must be at least rank-2, got {shape:?}"
            ),
            QuantflowError::GatherDimMismatch { label, stream_dim, schedule_dim } => write!(
                f,
                "quantflow: \"{label}\" gathers dim {schedule_dim} but the executor stream \
                 is sharded along dim {stream_dim}"
            ),
            QuantflowError::ScaleMisapplied { label, applications } => write!(
                f,
                "quantflow: \"{label}\" would apply each per-column scale {applications} \
                 times (must be exactly once)"
            ),
            QuantflowError::ChunkIndivisible { label, chunks, extent } => write!(
                f,
                "quantflow: \"{label}\" splits extent {extent} into {chunks} chunks"
            ),
            QuantflowError::WireVolumeMismatch { label, quant, dense } => write!(
                f,
                "quantflow: \"{label}\" quantized wire ({quant} B) is not below the dense \
                 volume it replaces ({dense} B)"
            ),
            QuantflowError::Extraction(e) => write!(f, "quantflow: {e}"),
        }
    }
}

/// How many times one output column's scale is folded into the result
/// under `discipline` for a stream gathered along `dim` in `chunks` chunks.
///
/// Column-gathered slices own their output columns, so per-slice scaling is
/// exact. Row-gathered slices contribute partial sums to *every* column;
/// per-slice scaling there multiplies the shared accumulator once per
/// chunk, while after-fold scaling touches it exactly once.
fn scale_applications(discipline: ScaleDiscipline, dim: usize, chunks: usize) -> usize {
    match (discipline, dim) {
        (ScaleDiscipline::PerSlice, 0) => chunks,
        (ScaleDiscipline::PerSlice | ScaleDiscipline::AfterFold, _) => 1,
    }
}

/// Check every int8-annotated collective of `schedule` against the
/// executor's stream table `plan`.
///
/// # Errors
///
/// The first [`QuantflowError`] found, in schedule order.
pub fn check_quantflow(
    schedule: &Schedule,
    plan: &[WgStream],
) -> Result<QuantflowReport, QuantflowError> {
    let torus = schedule.torus;
    let mut quant_steps = 0usize;
    let mut covered: Vec<&'static str> = Vec::new();
    let mut quant_bytes = 0usize;
    let mut dense_bytes = 0usize;

    for step in schedule.layer.iter().chain(&schedule.final_steps) {
        let Step::Collective { label, op, axes, input, chunks, wire, .. } = step else {
            continue;
        };
        if *wire != WireFormat::Int8 {
            continue;
        }
        quant_steps += 1;
        let SymOp::AllGather { dim: gather_dim } = *op else {
            return Err(QuantflowError::NotAllGather { label });
        };
        let stream = plan
            .iter()
            .find(|s| s.label == *label)
            .ok_or(QuantflowError::DroppedScales { label })?;
        if !covered.contains(label) {
            covered.push(label);
        }
        let shape = input
            .local_shape(torus)
            .map_err(QuantflowError::Extraction)?;
        if shape.len() < 2 {
            return Err(QuantflowError::NotAMatrix { label, shape });
        }
        let schedule_dim = input
            .dim_index(gather_dim)
            .ok_or_else(|| QuantflowError::Extraction(format!(
                "step \"{label}\": gathered dimension {gather_dim} not in tensor"
            )))?;
        // The stored shard is a matrix (`shard.rs` folds the head dims
        // together): a row-gathered stream stores `[.. , E]` as
        // `[prod(leading), E]`, a column-gathered one stores `[E, ..]` as
        // `[E, prod(trailing)]`. Scales ride the columns either way.
        let matrix_dim = usize::from(schedule_dim != 0);
        if matrix_dim != stream.dim {
            return Err(QuantflowError::GatherDimMismatch {
                label,
                stream_dim: stream.dim,
                schedule_dim: matrix_dim,
            });
        }
        let applications = scale_applications(stream.discipline, stream.dim, *chunks);
        if applications != 1 {
            return Err(QuantflowError::ScaleMisapplied { label, applications });
        }
        // Wire volume: the runtime charges the ledger per chunk, each chunk
        // sliced along the gathered dimension and carrying its own scales.
        let (rows, cols) = if matrix_dim == 0 {
            (shape[..shape.len() - 1].iter().product::<usize>(), shape[shape.len() - 1])
        } else {
            (shape[0], shape[1..].iter().product::<usize>())
        };
        if shape[schedule_dim] % chunks != 0 {
            return Err(QuantflowError::ChunkIndivisible {
                label,
                chunks: *chunks,
                extent: shape[schedule_dim],
            });
        }
        let (chunk_rows, chunk_cols) = if matrix_dim == 0 {
            (rows / chunks, cols)
        } else {
            (rows, cols / chunks)
        };
        let g = torus.group_size(*axes);
        let quant = chunks * quant_wire_bytes(g, chunk_rows, chunk_cols);
        let dense = g * rows * cols * usize::try_from(ACT_BYTES).unwrap_or(2);
        if quant >= dense {
            return Err(QuantflowError::WireVolumeMismatch { label, quant, dense });
        }
        quant_bytes += quant;
        dense_bytes += dense;
    }

    Ok(QuantflowReport {
        quant_steps,
        streams_covered: covered.len(),
        quant_bytes,
        dense_bytes,
    })
}

/// Run the pass against the runtime's actual stream table.
///
/// # Errors
///
/// Returns the formatted [`QuantflowError`].
pub fn check_schedule_quantflow(schedule: &Schedule) -> Result<QuantflowReport, String> {
    check_quantflow(schedule, &wg_stream_plan()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_core::layout::MeshFactors;
    use esti_core::schedule::build_schedule;
    use esti_core::{AttnSharding, FfnLayout, GatherExtent, Layout};
    use esti_hal::DType;

    fn wg_int8(chunks: usize) -> Schedule {
        // `tiny()` scaled up: a 4-way shard chunked 4 ways needs > 4·chunks
        // local rows for the per-chunk scale resend of row-gathered streams
        // (`wo`, `w_out`) to stay below the dense fp16 volume it replaces.
        let mut cfg = esti_model::ModelConfig::tiny();
        cfg.n_heads = 16;
        cfg.d_head = 32;
        cfg.d_model = 64;
        cfg.d_ff = 512;
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let s = build_schedule(&cfg, &layout, 8, 1).unwrap();
        let s = if chunks > 1 { s.with_overlap_chunks(chunks) } else { s };
        s.with_weight_dtype(DType::Int8)
    }

    #[test]
    fn weight_gathered_int8_schedule_passes_with_savings() {
        for chunks in [1, 4] {
            let s = wg_int8(chunks);
            let report = check_schedule_quantflow(&s).unwrap();
            assert!(report.quant_steps > 0, "chunks={chunks}");
            assert!(report.streams_covered >= 5, "chunks={chunks}");
            assert!(
                report.wire_ratio() < 1.0,
                "int8 wire must beat dense, got {}",
                report.wire_ratio()
            );
        }
    }

    #[test]
    fn dense_schedule_has_nothing_to_check() {
        let cfg = esti_model::ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        };
        let s = build_schedule(&cfg, &layout, 8, 1).unwrap();
        let report = check_schedule_quantflow(&s).unwrap();
        assert_eq!(report.quant_steps, 0);
        assert!((report.wire_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn double_applied_scale_rejected() {
        // The ISSUE's seeded mutation: flip a row-gathered stream's
        // discipline to per-slice. Under chunked overlap the shared
        // accumulator would absorb each column's scale once per chunk.
        let s = wg_int8(4);
        let mut plan = wg_stream_plan();
        let wo = plan
            .iter_mut()
            .find(|st| st.label == "wo weight all-gather")
            .unwrap();
        wo.discipline = ScaleDiscipline::PerSlice;
        let err = check_quantflow(&s, &plan).unwrap_err();
        match err {
            QuantflowError::ScaleMisapplied { label, applications } => {
                assert_eq!(label, "wo weight all-gather");
                assert_eq!(applications, 4, "once per chunk");
            }
            other => panic!("expected ScaleMisapplied, got {other}"),
        }
    }

    #[test]
    fn dropped_scale_rejected() {
        // Remove a stream from the executor table: the quantized gather
        // would arrive with scales nobody applies.
        let s = wg_int8(1);
        let plan: Vec<WgStream> = wg_stream_plan()
            .into_iter()
            .filter(|st| st.label != "wq weight all-gather")
            .collect();
        let err = check_quantflow(&s, &plan).unwrap_err();
        assert!(
            matches!(err, QuantflowError::DroppedScales { label } if label == "wq weight all-gather"),
            "got {err}"
        );
    }

    #[test]
    fn wrong_gather_dim_rejected() {
        let s = wg_int8(1);
        let mut plan = wg_stream_plan();
        // Claim wq is row-sharded: the schedule's column gather no longer
        // lines up with where the executor expects the scale axis.
        let wq = plan
            .iter_mut()
            .find(|st| st.label == "wq weight all-gather")
            .unwrap();
        wq.dim = 0;
        wq.discipline = ScaleDiscipline::AfterFold;
        let err = check_quantflow(&s, &plan).unwrap_err();
        assert!(matches!(err, QuantflowError::GatherDimMismatch { .. }), "got {err}");
    }

    #[test]
    fn int8_annotation_on_non_gather_rejected() {
        // Seed a schedule-side mutation: mark a non-all-gather collective
        // (a 2D layout's reduce-scatter/all-reduce traffic) as int8 wire.
        let cfg = esti_model::ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let mut s = build_schedule(&cfg, &layout, 8, 1).unwrap();
        let step = s
            .layer
            .iter_mut()
            .find_map(|st| match st {
                Step::Collective { op, wire, .. } if !matches!(op, SymOp::AllGather { .. }) => {
                    Some(wire)
                }
                _ => None,
            })
            .expect("2D schedules carry non-gather collectives");
        *step = WireFormat::Int8;
        let err = check_schedule_quantflow(&s).unwrap_err();
        assert!(err.contains("not an all-gather"), "got {err}");
    }

    #[test]
    fn chunked_wire_accounting_matches_the_ledger_per_chunk() {
        // Column chunks re-slice the scales with the values, telescoping
        // back to the monolithic closed form; row chunks must each carry
        // the full per-column scale vector (exactly what the runtime's
        // chunked quantized exchange posts), so chunking never *under*-
        // counts and only row-gathered streams pay a scale resend.
        let mono = check_schedule_quantflow(&wg_int8(1)).unwrap();
        let chunked = check_schedule_quantflow(&wg_int8(4)).unwrap();
        assert_eq!(mono.dense_bytes, chunked.dense_bytes);
        assert!(chunked.quant_bytes >= mono.quant_bytes);
        assert!(chunked.wire_ratio() < 1.0);
    }
}
