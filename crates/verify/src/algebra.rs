//! Pass 1 — sharding-algebra conformance of the analytic layout model.
//!
//! For each layout, chains [`Layout::weight_spec`] and
//! [`Layout::activation_spec`] through the [`CommPiece`] sequence returned
//! by [`Layout::layer_comm`], replaying each piece as a rewrite rule of the
//! partitioning algebra (Section 3.2) and statically verifying:
//!
//! * every sharded dimension divides evenly over the product of its mesh
//!   axes, and axis sets within a spec are pairwise disjoint;
//! * every partial-sum marker is resolved by a reduce before consumption
//!   (each all-gather / reduce-scatter pair closes its own partial sum and
//!   the chain returns to the layer-boundary spec);
//! * the post-spec of each piece equals the pre-spec of the next, with the
//!   intervening einsums inferred by [`expected_einsum`];
//! * each piece's `elements`, `axes`, and `group` fields agree with the
//!   spec-derived per-chip element counts and group geometry.

use esti_core::layout::{CommPiece, PieceKind};
use esti_core::schedule::{apply_op, expected_einsum, SymOp, SymTensor};
use esti_core::sharding::ShardingSpec;
use esti_core::{AttnSharding, FfnLayout, GatherExtent, Layout};
use esti_model::{BlockKind, ModelConfig};
use esti_topology::{Axis, AxisSet, TorusShape};

/// Result of the algebra pass: one log line per verified chain segment.
pub type AlgebraLog = Vec<String>;

/// Tolerance for comparing a piece's `f64` element count against the
/// spec-derived integer count.
const ELEM_TOL: f64 = 0.5;

fn logical_torus(layout: &Layout) -> TorusShape {
    TorusShape::new(layout.mesh.x, layout.mesh.y, layout.mesh.z)
}

fn next_piece<'a>(
    it: &mut std::slice::Iter<'a, CommPiece>,
    expect: &str,
) -> Result<&'a CommPiece, String> {
    let p = it
        .next()
        .ok_or_else(|| format!("layer_comm ended early: expected piece \"{expect}\""))?;
    if p.label != expect {
        return Err(format!(
            "layer_comm order: expected piece \"{expect}\", found \"{}\"",
            p.label
        ));
    }
    Ok(p)
}

fn check_elements(label: &str, got: f64, expect: f64) -> Result<(), String> {
    if (got - expect).abs() > ELEM_TOL {
        return Err(format!(
            "{label}: piece claims {got} elements but the sharding spec derives {expect}"
        ));
    }
    Ok(())
}

fn check_geometry(piece: &CommPiece, axes: AxisSet, torus: TorusShape) -> Result<(), String> {
    if piece.axes != axes.len() {
        return Err(format!(
            "{}: piece claims {} torus axes but the transfer runs over {axes} ({} axes)",
            piece.label,
            piece.axes,
            axes.len()
        ));
    }
    let group = torus.group_size(axes) as f64;
    if (piece.group - group).abs() > ELEM_TOL {
        return Err(format!(
            "{}: piece claims group size {} but axes {axes} span {group} chips",
            piece.label, piece.group
        ));
    }
    Ok(())
}

/// Verify one all-gather / reduce-scatter activation pair: the all-gather
/// must legally remove `axes` from dimension `dim` of `boundary`, and the
/// reduce-scatter must resolve a partial sum over the same axes back to
/// the boundary spec (the round trip of the paper's Formulation 1).
#[allow(clippy::too_many_arguments)]
fn check_gather_scatter_pair(
    boundary: &SymTensor,
    dim: char,
    axes: AxisSet,
    torus: TorusShape,
    serial_factor: f64,
    ag: &CommPiece,
    rs: &CommPiece,
    log: &mut AlgebraLog,
) -> Result<SymTensor, String> {
    let gathered = apply_op(SymOp::AllGather { dim }, axes, boundary)
        .map_err(|e| format!("{}: {e}", ag.label))?;
    gathered.check(torus).map_err(|e| format!("{}: {e}", ag.label))?;
    let per_chip =
        gathered.local_elements(torus).map_err(|e| format!("{}: {e}", ag.label))? as f64;
    check_elements(ag.label, ag.elements, per_chip * serial_factor)?;
    check_geometry(ag, axes, torus)?;

    // The computation between the pair leaves a partial sum over exactly
    // `axes`; the reduce-scatter must resolve it and land on the boundary.
    let partial = SymTensor {
        spec: gathered.spec.clone().partial(axes),
        global: gathered.global.clone(),
    };
    let scattered = apply_op(SymOp::ReduceScatter { dim }, axes, &partial)
        .map_err(|e| format!("{}: {e}", rs.label))?;
    if scattered != *boundary {
        return Err(format!(
            "{}: reduce-scatter lands on {scattered}, not the layer boundary {boundary}",
            rs.label
        ));
    }
    check_elements(rs.label, rs.elements, per_chip * serial_factor)?;
    check_geometry(rs, axes, torus)?;

    log.push(format!(
        "{} / {}: {boundary} <-> {gathered} over {axes} ok",
        ag.label, rs.label
    ));
    Ok(gathered)
}

/// `EF` spec transposed to `FE` (for the output projection).
fn transpose_ef(spec: &ShardingSpec) -> ShardingSpec {
    let names: String = spec.dims().iter().rev().map(|d| d.name).collect();
    let mut out = ShardingSpec::new(&names);
    for d in spec.dims() {
        if !d.axes.is_empty() {
            out = out.shard(d.name, d.axes);
        }
    }
    out
}

/// Drop axes of size 1 from every dimension and the partial-sum marker:
/// such axes are syntactically sharded but semantically replicated, and
/// `layer_comm` treats their collectives as free.
fn strip_unit_axes(t: &SymTensor, torus: TorusShape) -> SymTensor {
    let names: String = t.spec.dims().iter().map(|d| d.name).collect();
    let mut spec = ShardingSpec::new(&names);
    for d in t.spec.dims() {
        let kept: Vec<Axis> = d.axes.iter().filter(|&a| torus.size(a) > 1).collect();
        if !kept.is_empty() {
            spec = spec.shard(d.name, AxisSet::of(&kept));
        }
    }
    let partial: Vec<Axis> =
        t.spec.partial_sum().iter().filter(|&a| torus.size(a) > 1).collect();
    if !partial.is_empty() {
        spec = spec.partial(AxisSet::of(&partial));
    }
    SymTensor { spec, global: t.global.clone() }
}

/// Remove `axes` from every dimension of a spec (the effect of gathering
/// weights over those axes).
fn remove_axes(spec: &ShardingSpec, axes: AxisSet) -> ShardingSpec {
    let names: String = spec.dims().iter().map(|d| d.name).collect();
    let mut out = ShardingSpec::new(&names);
    for d in spec.dims() {
        let remaining = d.axes.without(axes);
        if !remaining.is_empty() {
            out = out.shard(d.name, remaining);
        }
    }
    out
}

/// Run the algebra pass for one layout applied to one model.
///
/// `batch_tokens` is the `B·L` token count the piece volumes are evaluated
/// at; callers should pick a multiple of the chip count so batch-sharded
/// specs stay divisible.
#[allow(clippy::too_many_lines)]
pub fn check_layout_algebra(
    model: &ModelConfig,
    layout: &Layout,
    batch_tokens: usize,
) -> Result<AlgebraLog, String> {
    let torus = logical_torus(layout);
    let mut log = AlgebraLog::new();
    let d_model = model.d_model;
    let d_ff = model.d_ff;
    let serial_factor = match model.block {
        BlockKind::Parallel => 1.0,
        BlockKind::Serial => 2.0,
    };

    // Well-formedness + divisibility of the layout's published specs.
    let weight = SymTensor { spec: layout.weight_spec(), global: vec![d_model, d_ff] };
    weight.check(torus).map_err(|e| format!("weight spec: {e}"))?;
    log.push(format!(
        "weight spec {} divisible on {} chips",
        weight.spec,
        torus.chip_count()
    ));

    let acts =
        SymTensor { spec: layout.activation_spec(), global: vec![batch_tokens, 1, d_model] };
    acts.check(torus).map_err(|e| format!("activation spec: {e}"))?;
    log.push(format!("activation spec {} divisible at {batch_tokens} tokens", acts.spec));

    let pieces = layout.layer_comm(model, batch_tokens as f64);
    let mut it = pieces.iter();

    let ax = AxisSet::single(Axis::X);
    let ayz = AxisSet::of(&[Axis::Y, Axis::Z]);
    let all = AxisSet::all();

    match layout.ffn {
        FfnLayout::WeightStationary1D => {
            // BLE_xyz -> all-gather(xyz) -> BLE -> einsums (partial xyz)
            // -> reduce-scatter(xyz) -> BLE_xyz.
            let ag = next_piece(&mut it, "acts all-gather")?;
            let rs = next_piece(&mut it, "acts reduce-scatter")?;
            let gathered = check_gather_scatter_pair(
                &acts, 'E', all, torus, serial_factor, ag, rs, &mut log,
            )?;
            let hidden = expected_einsum(&gathered, &weight, &['E'], "BLF")
                .map_err(|e| format!("w_in einsum: {e}"))?;
            let w_out =
                SymTensor { spec: transpose_ef(&weight.spec), global: vec![d_ff, d_model] };
            let out = expected_einsum(&hidden, &w_out, &['F'], "BLE")
                .map_err(|e| format!("w_out einsum: {e}"))?;
            if out.spec.partial_sum() != all {
                return Err(format!(
                    "1D einsum chain should leave a partial sum over xyz, got {}",
                    out.spec
                ));
            }
            log.push(format!("einsum chain {gathered} -> {hidden} -> {out} ok"));
        }
        FfnLayout::WeightStationary2D => {
            // Boundary pair over yz on d_model; hidden pair over x on d_ff.
            let ag_yz = next_piece(&mut it, "acts all-gather(yz)")?;
            let rs_yz = next_piece(&mut it, "acts reduce-scatter(yz)")?;
            let ag_x = next_piece(&mut it, "acts all-gather(x)")?;
            let rs_x = next_piece(&mut it, "acts reduce-scatter(x)")?;

            // The yz pieces carry no serial factor in the analytic model
            // (only the d_ff-axis pieces double in the serial block).
            let x_i =
                check_gather_scatter_pair(&acts, 'E', ayz, torus, 1.0, ag_yz, rs_yz, &mut log)?;
            // Contraction over E_x leaves a partial sum over x on the
            // hidden activation, resolved by reduce-scatter onto F (giving
            // F_xyz), then all-gathered back to F_yz for the output einsum.
            let hidden = expected_einsum(&x_i, &weight, &['E'], "BLF")
                .map_err(|e| format!("w_in einsum: {e}"))?;
            if hidden.spec.partial_sum() != ax {
                return Err(format!(
                    "2D w_in einsum should leave a partial sum over x, got {}",
                    hidden.spec
                ));
            }
            let hidden_sharded = apply_op(SymOp::ReduceScatter { dim: 'F' }, ax, &hidden)
                .map_err(|e| format!("{}: {e}", rs_x.label))?;
            hidden_sharded.check(torus).map_err(|e| format!("{}: {e}", rs_x.label))?;
            let per_chip = hidden_sharded
                .local_elements(torus)
                .map_err(|e| format!("{}: {e}", rs_x.label))? as f64;
            // `elements` is the per-chip payload on the gathered (F_yz) side.
            let gathered_per_chip = per_chip * torus.group_size(ax) as f64;
            check_elements(rs_x.label, rs_x.elements, gathered_per_chip * serial_factor)?;
            check_geometry(rs_x, ax, torus)?;
            let hidden_yz = apply_op(SymOp::AllGather { dim: 'F' }, ax, &hidden_sharded)
                .map_err(|e| format!("{}: {e}", ag_x.label))?;
            check_elements(ag_x.label, ag_x.elements, gathered_per_chip * serial_factor)?;
            check_geometry(ag_x, ax, torus)?;
            log.push(format!(
                "hidden chain {hidden} -> {hidden_sharded} -> {hidden_yz} over x ok"
            ));
            let w_out =
                SymTensor { spec: transpose_ef(&weight.spec), global: vec![d_ff, d_model] };
            let out = expected_einsum(&hidden_yz, &w_out, &['F'], "BLE")
                .map_err(|e| format!("w_out einsum: {e}"))?;
            if out.spec.partial_sum() != ayz {
                return Err(format!(
                    "2D w_out einsum should leave a partial sum over yz, got {}",
                    out.spec
                ));
            }
        }
        FfnLayout::WeightGathered(extent) => {
            let gather = match extent {
                GatherExtent::X => ax,
                GatherExtent::Xy => AxisSet::of(&[Axis::X, Axis::Y]),
                GatherExtent::Xyz => all,
            };
            let local = all.without(gather);
            let wp = next_piece(&mut it, "weights all-gather")?;
            if wp.kind != PieceKind::GatherScatter || !wp.is_weights {
                return Err(format!("{}: expected a weight gather/scatter piece", wp.label));
            }
            // Weights stored E_x F_yz lose the gathered axes on every dim.
            let gathered_w = SymTensor {
                spec: remove_axes(&weight.spec, gather),
                global: weight.global.clone(),
            };
            gathered_w.check(torus).map_err(|e| format!("{}: {e}", wp.label))?;
            // `elements` counts the whole layer's weights (attention
            // included), which the EF spec alone cannot derive; check the
            // arithmetic against params_per_layer.
            let n = torus.chip_count() as f64;
            let n_gather = torus.group_size(gather) as f64;
            check_elements(
                wp.label,
                wp.elements,
                model.params_per_layer() as f64 * n_gather / n,
            )?;
            check_geometry(wp, gather, torus)?;
            log.push(format!(
                "weights all-gather {} -> {} over {gather} ok",
                weight.spec, gathered_w.spec
            ));

            if torus.group_size(local) == 1 {
                // Fully gathered (or the leftover axes have size 1, which
                // layer_comm treats as free): the layer is local over the
                // batch shard and the einsum chain must close with no
                // partial sum. Size-1 axes are stripped first — they are
                // syntactically sharded but semantically replicated.
                let acts_n = strip_unit_axes(&acts, torus);
                let w_n = strip_unit_axes(&gathered_w, torus);
                let hidden = expected_einsum(&acts_n, &w_n, &['E'], "BLF")
                    .map_err(|e| format!("w_in einsum: {e}"))?;
                let w_out =
                    SymTensor { spec: transpose_ef(&w_n.spec), global: vec![d_ff, d_model] };
                let out = expected_einsum(&hidden, &w_out, &['F'], "BLE")
                    .map_err(|e| format!("w_out einsum: {e}"))?;
                if !out.spec.partial_sum().is_empty() {
                    return Err(format!(
                        "fully weight-gathered layer should need no reduce, got {}",
                        out.spec
                    ));
                }
                if out != acts_n {
                    return Err(format!(
                        "fully weight-gathered layer should return to {acts_n}, got {out}"
                    ));
                }
                log.push(format!("local einsum chain {acts_n} -> {hidden} -> {out} ok"));
            } else {
                // The remaining 1D-style activation pair over the local axes.
                let ag = next_piece(&mut it, "acts all-gather")?;
                let rs = next_piece(&mut it, "acts reduce-scatter")?;
                let gathered = check_gather_scatter_pair(
                    &acts, 'E', local, torus, serial_factor, ag, rs, &mut log,
                )?;
                let hidden = expected_einsum(&gathered, &gathered_w, &['E'], "BLF")
                    .map_err(|e| format!("w_in einsum: {e}"))?;
                let w_out = SymTensor {
                    spec: transpose_ef(&gathered_w.spec),
                    global: vec![d_ff, d_model],
                };
                let out = expected_einsum(&hidden, &w_out, &['F'], "BLE")
                    .map_err(|e| format!("w_out einsum: {e}"))?;
                if out.spec.partial_sum() != local {
                    return Err(format!(
                        "weight-gathered einsum chain should leave a partial sum over \
                         {local}, got {}",
                        out.spec
                    ));
                }
                log.push(format!("einsum chain {gathered} -> {hidden} -> {out} ok"));
            }
        }
    }

    if layout.attn == AttnSharding::Batch {
        if model.n_kv_heads() != 1 {
            return Err(
                "batch-sharded attention requires multiquery attention (Section 3.3)".to_string()
            );
        }
        let n = torus.chip_count() as f64;
        let qkv = next_piece(&mut it, "attn qkv all-to-all")?;
        if qkv.kind != PieceKind::AllToAll {
            return Err(format!("{}: expected an all-to-all piece", qkv.label));
        }
        let fused = (model.attn_dim() + 2 * model.n_kv_heads() * model.d_head) as f64;
        check_elements(qkv.label, qkv.elements, batch_tokens as f64 * fused / n)?;
        check_geometry(qkv, all, torus)?;
        let out = next_piece(&mut it, "attn out all-to-all")?;
        if out.kind != PieceKind::AllToAll {
            return Err(format!("{}: expected an all-to-all piece", out.label));
        }
        check_elements(
            out.label,
            out.elements,
            batch_tokens as f64 * model.attn_dim() as f64 / n,
        )?;
        check_geometry(out, all, torus)?;
        log.push("attention all-to-all pair ok".to_string());
    }

    if let Some(p) = it.next() {
        return Err(format!("unexpected trailing comm piece \"{}\"", p.label));
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_core::layout::MeshFactors;

    fn all_layouts(mesh: MeshFactors) -> Vec<Layout> {
        let mut v = Vec::new();
        for ffn in [
            FfnLayout::WeightStationary1D,
            FfnLayout::WeightStationary2D,
            FfnLayout::WeightGathered(GatherExtent::X),
            FfnLayout::WeightGathered(GatherExtent::Xy),
            FfnLayout::WeightGathered(GatherExtent::Xyz),
        ] {
            for attn in [AttnSharding::Head, AttnSharding::Batch] {
                v.push(Layout { ffn, attn, mesh });
            }
        }
        v
    }

    #[test]
    fn tiny_model_all_layouts_pass() {
        let model = ModelConfig::tiny();
        let mesh = MeshFactors::new(2, 2, 1);
        for layout in all_layouts(mesh) {
            let r = check_layout_algebra(&model, &layout, mesh.n_chips() * 4);
            assert!(r.is_ok(), "{}: {}", layout.describe(), r.unwrap_err());
        }
    }

    #[test]
    fn serial_block_all_layouts_pass() {
        // Serial blocks double the d_ff-axis piece volumes; head-sharded
        // attention only (tiny_multihead is multihead).
        let model = ModelConfig::tiny_multihead();
        let mesh = MeshFactors::new(2, 2, 1);
        for layout in all_layouts(mesh) {
            if layout.attn == AttnSharding::Batch {
                continue;
            }
            let r = check_layout_algebra(&model, &layout, mesh.n_chips() * 4);
            assert!(r.is_ok(), "{}: {}", layout.describe(), r.unwrap_err());
        }
    }

    #[test]
    fn indivisible_d_model_caught() {
        // Seeded bad plan for Pass 1: d_model not divisible by the mesh,
        // so the 1D boundary BLE_xyz cannot shard E.
        let mut model = ModelConfig::tiny();
        model.d_model = 6;
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let err = check_layout_algebra(&model, &layout, 16).unwrap_err();
        assert!(err.contains("divisible"), "unexpected error: {err}");
    }

    #[test]
    fn indivisible_batch_shard_caught() {
        // Weight-gathered boundary shards the batch; an odd token count
        // cannot split over a 4-chip gather group.
        let model = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let err = check_layout_algebra(&model, &layout, 3).unwrap_err();
        assert!(err.contains("divisible"), "unexpected error: {err}");
    }

    #[test]
    fn batch_attention_requires_multiquery() {
        let model = ModelConfig::tiny_multihead();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let err = check_layout_algebra(&model, &layout, 16).unwrap_err();
        assert!(err.contains("multiquery"), "unexpected error: {err}");
    }

    #[test]
    fn tampered_piece_caught() {
        // Seeded bad pieces: take a real layout's comm sequence and
        // corrupt one field at a time; the piece-level checks must reject
        // each corruption with the piece's label in the message.
        let model = ModelConfig::tiny();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        };
        let torus = TorusShape::new(2, 2, 1);
        let pieces = layout.layer_comm(&model, 16.0);
        let good = &pieces[0]; // "acts all-gather", elements 16*16, axes 3, group 4

        let mut wrong_volume = *good;
        wrong_volume.elements *= 2.0;
        let err = check_elements(wrong_volume.label, wrong_volume.elements, good.elements)
            .unwrap_err();
        assert!(err.contains("acts all-gather"), "got {err}");

        let mut wrong_axes = *good;
        wrong_axes.axes = 1;
        let err = check_geometry(&wrong_axes, AxisSet::all(), torus).unwrap_err();
        assert!(err.contains("torus axes"), "got {err}");

        let mut wrong_group = *good;
        wrong_group.group = 16.0;
        let err = check_geometry(&wrong_group, AxisSet::all(), torus).unwrap_err();
        assert!(err.contains("group size"), "got {err}");
    }
}
