//! Shared helpers for the experiment binaries that regenerate every table
//! and figure of *Efficiently Scaling Transformer Inference*.
//!
//! Each binary prints the series/rows the paper reports (for eyeballing in
//! a terminal or teeing into a log) and also writes a CSV under `results/`
//! so plots can be regenerated offline. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured comparisons.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use esti_core::perf::{estimate, Estimate, PhaseSpec};
use esti_core::{Layout, Machine};
use esti_hal::DType;
use esti_model::ModelConfig;

/// Where experiment CSVs are written (`results/` at the workspace root,
/// falling back to the current directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up to the workspace root if invoked from a crate directory.
    for _ in 0..3 {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            break;
        }
        if let Some(parent) = dir.parent() {
            dir = parent.to_path_buf();
        }
    }
    dir.join("results")
}

/// Writes a CSV with a header row; errors are reported but non-fatal so
/// experiments still print to stdout on read-only filesystems.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
            println!("\n[wrote {}]", path.display());
        }
        Err(e) => eprintln!("note: cannot write {}: {e}", path.display()),
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// End-to-end estimate of one FasterTransformer-style benchmark point:
/// prefill `input` tokens then generate `output` tokens at `batch`, using
/// the paper's per-phase layout switching. Returns
/// `(prefill, generate, total_seconds, total_mfu)`.
#[must_use]
pub fn e2e_point(
    model: &ModelConfig,
    machine: &Machine,
    batch: usize,
    input: usize,
    output: usize,
    dtype: DType,
) -> (Estimate, Estimate, f64, f64) {
    let prefill_layout =
        esti_core::planner::prefill_layout(model, machine, batch, input, dtype);
    let decode_layout =
        esti_core::planner::decode_layout_for_batch(model, machine, batch);
    let p = estimate(machine, model, &prefill_layout, &PhaseSpec::prefill(batch, input), dtype);
    let g = esti_core::perf::generate_latency(machine, model, &decode_layout, batch, input, output, dtype);
    let total = p.step_time + g.step_time;
    let tokens = (batch * (input + output)) as f64;
    let mfu = model.flops_per_token() * tokens / (total * machine.peak_flops());
    (p, g, total, mfu)
}

/// Decode estimate at the paper's standard setting (used by several
/// figures): 2D weight-stationary, batch-sharded attention when available.
#[must_use]
pub fn decode_point(
    model: &ModelConfig,
    machine: &Machine,
    batch: usize,
    context: usize,
    dtype: DType,
) -> Estimate {
    let layout = esti_core::planner::decode_layout_for_batch(model, machine, batch);
    estimate(machine, model, &layout, &PhaseSpec::decode(batch, context), dtype)
}

/// Formats a [`Layout`] compactly for table cells.
#[must_use]
pub fn layout_cell(layout: &Layout) -> String {
    format!("{}/{}", layout.ffn.name(), layout.attn.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2e_point_is_consistent() {
        let model = ModelConfig::palm_540b_padded();
        let machine = Machine::tpu_v4_slice(64).unwrap();
        let (p, g, total, mfu) = e2e_point(&model, &machine, 64, 60, 20, DType::Bf16);
        assert!((p.step_time + g.step_time - total).abs() < 1e-12);
        assert!(mfu > 0.0 && mfu < 1.0);
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}

/// One row of Tables 2–3: a named configuration with the paper's reported
/// MFU and latency for comparison.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario label, e.g. "low-latency prefill".
    pub name: &'static str,
    /// `true` for prefill (2048 tokens), `false` for decode (64 tokens at
    /// context 2048).
    pub prefill: bool,
    /// Chip count.
    pub chips: usize,
    /// Batch size in sequences.
    pub batch: usize,
    /// Feedforward layout.
    pub ffn: esti_core::layout::FfnLayout,
    /// Attention sharding.
    pub attn: esti_core::layout::AttnSharding,
    /// Weight storage type.
    pub dtype: DType,
    /// Paper-reported MFU (percent).
    pub paper_mfu: f64,
    /// Paper-reported latency (seconds).
    pub paper_latency: f64,
}

/// Evaluates and prints a Tables 2/3-style scenario table, returning CSV
/// rows. Prefill rows process 2048 tokens; decode rows generate 64 tokens
/// from a 2048-token context, matching the tables' captions.
pub fn run_scenario_table(model: &ModelConfig, rows: &[ScenarioRow]) -> Vec<String> {
    println!(
        "{:<24} {:>5} {:>6} {:>8} {:>6} {:>6} {:>14} {:>16}",
        "scenario", "chips", "batch", "layout", "attn", "fmt", "MFU% (paper)", "latency (paper)"
    );
    let mut csv = Vec::new();
    for r in rows {
        let machine = Machine::tpu_v4_slice(r.chips).expect("catalog slice");
        let mesh = Layout::ws2d_mesh(r.chips, model.d_model, model.d_ff);
        let layout = Layout { ffn: r.ffn, attn: r.attn, mesh };
        let (latency, mfu) = if r.prefill {
            let est = estimate(&machine, model, &layout, &PhaseSpec::prefill(r.batch, 2048), r.dtype);
            (est.step_time, est.mfu)
        } else {
            let est = esti_core::perf::generate_latency(
                &machine, model, &layout, r.batch, 2048, 64, r.dtype,
            );
            (est.step_time, est.mfu)
        };
        println!(
            "{:<24} {:>5} {:>6} {:>8} {:>6} {:>6} {:>6.1} ({:>4.0}) {:>8.2}s ({:>5.2}s)",
            r.name,
            r.chips,
            r.batch,
            r.ffn.name(),
            r.attn.name(),
            r.dtype,
            mfu * 100.0,
            r.paper_mfu,
            latency,
            r.paper_latency
        );
        csv.push(format!(
            "{},{},{},{},{},{},{:.4},{},{:.4},{}",
            r.name,
            r.chips,
            r.batch,
            r.ffn.name(),
            r.attn.name(),
            r.dtype,
            mfu * 100.0,
            r.paper_mfu,
            latency,
            r.paper_latency
        ));
    }
    csv
}
