//! Validation experiment — the discrete-event network simulator vs the
//! closed-form collective costs of Appendix A.1, across collective kinds,
//! torus shapes, and axis groups. This is the evidence that every
//! communication number in the reproduced figures rests on a checked model
//! rather than trusted algebra.

use esti_bench::{banner, write_csv};
use esti_hal::ChipSpec;
use esti_netsim::{analytic_time, simulate_collective, CollectiveKind};
use esti_topology::{Axis, AxisSet, TorusShape};

fn main() {
    banner("netsim vs Appendix A.1 closed forms (8 MiB per-chip payload)");
    let chip = ChipSpec::tpu_v4();
    let bytes = 8.0 * 1024.0 * 1024.0;
    let cases: Vec<(&str, TorusShape, AxisSet)> = vec![
        ("4-ring x", TorusShape::new(4, 1, 1), AxisSet::single(Axis::X)),
        ("8-ring x", TorusShape::new(8, 1, 1), AxisSet::single(Axis::X)),
        ("4x4 xy", TorusShape::new(4, 4, 1), AxisSet::of(&[Axis::X, Axis::Y])),
        ("4x4x4 xyz", TorusShape::new(4, 4, 4), AxisSet::all()),
        ("4x4x4 yz", TorusShape::new(4, 4, 4), AxisSet::of(&[Axis::Y, Axis::Z])),
    ];
    let kinds = [
        ("all-gather", CollectiveKind::AllGather),
        ("reduce-scatter", CollectiveKind::ReduceScatter),
        ("all-reduce", CollectiveKind::AllReduce),
        ("all-to-all", CollectiveKind::AllToAll),
    ];

    println!(
        "{:<12} {:<15} {:>12} {:>12} {:>8}",
        "topology", "collective", "simulated us", "analytic us", "ratio"
    );
    let mut rows = Vec::new();
    let mut worst: f64 = 1.0;
    for (topo_name, torus, axes) in &cases {
        for (kind_name, kind) in kinds {
            let sim = simulate_collective(&chip, *torus, kind, *axes, bytes);
            let ana = analytic_time(&chip, *torus, kind, *axes, bytes);
            let ratio = sim / ana;
            worst = worst.max(ratio.max(1.0 / ratio));
            println!(
                "{topo_name:<12} {kind_name:<15} {:>12.1} {:>12.1} {:>8.3}",
                sim * 1e6,
                ana * 1e6,
                ratio
            );
            rows.push(format!("{topo_name},{kind_name},{:.3},{:.3},{ratio:.4}", sim * 1e6, ana * 1e6));
        }
    }
    write_csv("netsim_check.csv", "topology,collective,simulated_us,analytic_us,ratio", &rows);
    println!("\nworst-case discrepancy: {worst:.2}x (single-axis cases match exactly;");
    println!("multi-axis interleaving carries bounded pipeline slack).");
}
