//! The reproduction scoreboard: every quantitative claim of the paper that
//! this repository audits, evaluated on the simulated hardware in one run.

use esti_bench::banner;
use esti_core::claims::{all_claims, holding};

fn main() {
    banner("Efficiently Scaling Transformer Inference — claim audit");
    let claims = all_claims();
    for c in &claims {
        println!(
            "[{}] {}\n    {}\n    measured: {}\n",
            if c.holds { "PASS" } else { "FAIL" },
            c.source,
            c.statement,
            c.measured
        );
    }
    let ok = holding(&claims);
    println!("{ok}/{} claims hold", claims.len());
    if ok != claims.len() {
        std::process::exit(1);
    }
}
