//! Figure 1 — cost vs latency Pareto frontiers for the PaLM family.
//!
//! Left: decode latency per token (context 2048, generating 64 tokens) vs
//! chip-seconds per token. Right: prefill of 2048 input tokens. Sweeps
//! batch × chip count with the paper's layout selection, in bf16 and int8.

use esti_bench::{banner, write_csv};
use esti_core::pareto::{decode_sweep, pareto_frontier, prefill_sweep};
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    let models = [ModelConfig::palm_8b(), ModelConfig::palm_62b(), ModelConfig::palm_540b_padded()];
    let dtypes = [DType::Bf16, DType::Int8];
    let mut rows = Vec::new();

    banner("Figure 1 (left): generate — latency per token vs cost");
    println!(
        "{:<22} {:>5} {:>6} {:>6} {:>12} {:>15} {:>6}",
        "model", "dtype", "chips", "batch", "ms/token", "chip-ms/token", "MFU%"
    );
    for model in &models {
        for dtype in dtypes {
            let sweep = decode_sweep(model, dtype, 2048);
            for p in pareto_frontier(&sweep, |p| p.cost) {
                println!(
                    "{:<22} {:>5} {:>6} {:>6} {:>12.2} {:>15.3} {:>6.1}",
                    p.model,
                    dtype,
                    p.n_chips,
                    p.batch,
                    p.latency * 1e3,
                    p.cost * 1e3,
                    p.mfu * 100.0
                );
                rows.push(format!(
                    "generate,{},{},{},{},{:.4},{:.5},{:.4}",
                    p.model, dtype, p.n_chips, p.batch, p.latency * 1e3, p.cost * 1e3, p.mfu
                ));
            }
            println!();
        }
    }

    banner("Figure 1 (right): prefill 2048 tokens — latency vs cost");
    println!(
        "{:<22} {:>5} {:>6} {:>6} {:>12} {:>15} {:>6}",
        "model", "dtype", "chips", "batch", "latency s", "chip-ms/token", "MFU%"
    );
    for model in &models {
        for dtype in dtypes {
            let sweep = prefill_sweep(model, dtype, 2048);
            for p in pareto_frontier(&sweep, |p| p.cost) {
                println!(
                    "{:<22} {:>5} {:>6} {:>6} {:>12.3} {:>15.3} {:>6.1}",
                    p.model,
                    dtype,
                    p.n_chips,
                    p.batch,
                    p.latency,
                    p.cost * 1e3,
                    p.mfu * 100.0
                );
                rows.push(format!(
                    "prefill,{},{},{},{},{:.4},{:.5},{:.4}",
                    p.model, dtype, p.n_chips, p.batch, p.latency, p.cost * 1e3, p.mfu
                ));
            }
            println!();
        }
    }

    write_csv(
        "fig1.csv",
        "phase,model,dtype,chips,batch,latency,cost_chip_ms_per_token,mfu",
        &rows,
    );

    // Headline checks from Section 4.4.
    let sweep = decode_sweep(&ModelConfig::palm_540b_padded(), DType::Int8, 2048);
    let min = sweep.iter().map(|p| p.latency).fold(f64::INFINITY, f64::min);
    let b512 = sweep
        .iter()
        .filter(|p| p.batch == 512)
        .map(|p| p.latency)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nPaLM 540B int8: min decode latency {:.1} ms/token; batch-512 latency {:.1} ms/token \
         (ratio {:.1}x, paper ~3x)",
        min * 1e3,
        b512 * 1e3,
        b512 / min
    );
}
