//! Table 1 — maximum supported context length for the attention variants
//! of PaLM 540B on 64 chips, with 30% of HBM reserved for the KV cache.

use esti_bench::{banner, write_csv};
use esti_core::layout::AttnSharding;
use esti_core::memory::table1_row;
use esti_core::Machine;
use esti_model::ModelConfig;

/// (variant name, model, sharding, d_head, (paper batch-128, paper batch-512)).
type Table1Row = (&'static str, ModelConfig, AttnSharding, u32, (u32, u32));

fn main() {
    banner("Table 1: max context length per attention variant (PaLM 540B, 64 chips)");
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let rows_spec: [Table1Row; 3] = [
        ("Multihead", ModelConfig::palm_540b_multihead(), AttnSharding::Head, 128, (1320, 330)),
        ("Baseline multiquery", ModelConfig::palm_540b(), AttnSharding::Head, 256, (660, 165)),
        ("Optimized multiquery", ModelConfig::palm_540b(), AttnSharding::Batch, 256, (43_000, 10_700)),
    ];
    println!(
        "{:<22} {:>7} {:>18} {:>18}",
        "variant", "d_head", "batch=128 (paper)", "batch=512 (paper)"
    );
    let mut csv = Vec::new();
    let mut results = Vec::new();
    for (name, model, sharding, dh, (p128, p512)) in rows_spec {
        let c128 = table1_row(&model, sharding, &machine, 128);
        let c512 = table1_row(&model, sharding, &machine, 512);
        println!("{name:<22} {dh:>7} {c128:>9} ({p128:>6}) {c512:>9} ({p512:>6})");
        csv.push(format!("{name},{dh},{c128},{p128},{c512},{p512}"));
        results.push((name, c512));
    }
    write_csv("table1.csv", "variant,d_head,ctx_b128,paper_b128,ctx_b512,paper_b512", &csv);

    let mh = results[0].1 as f64;
    let opt = results[2].1 as f64;
    println!(
        "\noptimized multiquery supports {:.0}x the multihead context at batch 512 \
         (paper: up to 32x larger context lengths)",
        opt / mh
    );
}
