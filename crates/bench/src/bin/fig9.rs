//! Figure 9 — MFU vs total latency for the 60-input-token, 20-output-token
//! benchmark, across batch sizes: our PaLM 540B and MT-NLG 530B
//! implementations (64 TPU v4 chips, 2D partitioning) against the three
//! published FasterTransformer configurations.

use esti_bench::{banner, e2e_point, write_csv};
use esti_core::ft;
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Figure 9: MFU vs latency, 60 input / 20 output tokens");
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let bench = ft::benchmarks().into_iter().find(|b| b.input_tokens == 60).expect("60/20 bench");
    let mut rows = Vec::new();

    println!("-- published FasterTransformer (MT-NLG 530B on A100s) --");
    for cfg in &bench.configs {
        println!("{}:", cfg.name);
        for p in &cfg.points {
            if let (Some(t), Some(m)) = (p.time_ms, p.mfu_pct) {
                println!("  batch {:>4}: {:>7.0} ms  {:>4.0}% MFU", p.batch, t, m);
                rows.push(format!("FT-{},{},{t},{m}", cfg.name, p.batch));
            }
        }
    }

    println!("\n-- ours (64 TPU v4, 2D weight-stationary) --");
    for (name, model) in [
        ("PaLM-540B", ModelConfig::palm_540b_padded()),
        ("MT-NLG-530B", ModelConfig::mt_nlg_530b()),
    ] {
        println!("{name}:");
        for batch in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let (_, _, total, mfu) = e2e_point(&model, &machine, batch, 60, 20, DType::Bf16);
            println!("  batch {batch:>4}: {:>7.0} ms  {:>4.0}% MFU", total * 1e3, mfu * 100.0);
            rows.push(format!("ours-{name},{batch},{:.1},{:.2}", total * 1e3, mfu * 100.0));
        }
    }

    write_csv("fig9.csv", "series,batch,total_ms,mfu_pct", &rows);
    println!(
        "\nexpected shape: both of our series sit up-and-left of the FT envelope \
         (better MFU at equal latency), with PaLM above MT-NLG by a few points of MFU."
    );
}
