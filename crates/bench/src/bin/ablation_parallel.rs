//! Ablation (Section 4.3) — the parallel attention/feedforward block vs
//! the standard serialized formulation: the serialized variant pays one
//! extra all-reduce per layer, costing ~14% extra decode latency in the
//! paper; the gap shrinks during prefill under weight-gathered layouts.
//!
//! Also included: the int8-vs-bf16 ablation (Section 3.6 / 4.4) and the
//! collective bandwidth-derate sensitivity of the calibrated model.

use esti_bench::{banner, write_csv};
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use esti_core::perf::{estimate, estimate_with, PerfParams, PhaseSpec};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::{BlockKind, ModelConfig};

fn main() {
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let parallel = ModelConfig::palm_540b_padded();
    let mut serial = parallel.clone();
    serial.name = "PaLM 540B (serial blocks)".to_owned();
    serial.block = BlockKind::Serial;

    banner("Ablation 1: parallel vs serialized Transformer block (Section 4.3)");
    let mesh = Layout::ws2d_mesh(64, parallel.d_model, parallel.d_ff);
    let ws2d = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Batch, mesh };
    let wg = Layout { ffn: FfnLayout::WeightGathered(GatherExtent::Xyz), attn: AttnSharding::Batch, mesh };
    let mut rows = Vec::new();

    let decode = PhaseSpec::decode(512, 2048);
    let d_par = estimate(&machine, &parallel, &ws2d, &decode, DType::Bf16);
    let d_ser = estimate(&machine, &serial, &ws2d, &decode, DType::Bf16);
    let decode_overhead = d_ser.step_time / d_par.step_time - 1.0;
    println!(
        "decode (B=512, WS 2D):  parallel {:.1} ms  serial {:.1} ms  -> serial +{:.1}% \
         (paper: +14%)",
        d_par.step_time * 1e3,
        d_ser.step_time * 1e3,
        decode_overhead * 100.0
    );
    rows.push(format!("decode_ws2d,{:.4},{:.4}", d_par.step_time, d_ser.step_time));

    let prefill = PhaseSpec::prefill(512, 2048);
    let p_par = estimate(&machine, &parallel, &wg, &prefill, DType::Bf16);
    let p_ser = estimate(&machine, &serial, &wg, &prefill, DType::Bf16);
    let prefill_overhead = p_ser.step_time / p_par.step_time - 1.0;
    println!(
        "prefill (B=512, WG XYZ): parallel {:.1} s   serial {:.1} s   -> serial +{:.1}% \
         (paper: difference shrinks in prefill)",
        p_par.step_time,
        p_ser.step_time,
        prefill_overhead * 100.0
    );
    rows.push(format!("prefill_wg,{:.4},{:.4}", p_par.step_time, p_ser.step_time));
    assert!(prefill_overhead < decode_overhead, "prefill gap should be smaller");

    banner("Ablation 2: int8 vs bf16 weights (Section 3.6)");
    for batch in [16usize, 64, 256, 1024] {
        let spec = PhaseSpec::decode(batch, 2048);
        let bf = estimate(&machine, &parallel, &ws2d, &spec, DType::Bf16);
        let i8_ = estimate(&machine, &parallel, &ws2d, &spec, DType::Int8);
        println!(
            "decode batch {batch:>4}: bf16 {:>7.2} ms  int8 {:>7.2} ms  (int8/bf16 = {:.2})",
            bf.step_time * 1e3,
            i8_.step_time * 1e3,
            i8_.step_time / bf.step_time
        );
        rows.push(format!("int8_b{batch},{:.5},{:.5}", bf.step_time, i8_.step_time));
    }
    println!("expected shape: int8 helps most at small batch (weight-loading bound).");

    banner("Ablation 3: collective-bandwidth sensitivity of the calibration");
    for derate in [0.25f64, 0.5, 1.0] {
        let params = PerfParams { collective_bw_derate: derate, ..PerfParams::default() };
        let est = estimate_with(&machine, &parallel, &ws2d, &decode, DType::Bf16, &params);
        println!(
            "derate {derate:.2}: decode {:.1} ms/step (comm {:.1} ms)",
            est.step_time * 1e3,
            est.comm_time * 1e3
        );
        rows.push(format!("derate_{derate},{:.5},{:.5}", est.step_time, est.comm_time));
    }

    write_csv("ablation_parallel.csv", "case,a,b", &rows);
}
