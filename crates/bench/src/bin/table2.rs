//! Table 2 — example configurations for PaLM 540B on 64 chips: the
//! low-latency scenario (batch-1 prefill, batch-64 decode, int8) and the
//! high-throughput scenario (batch 512, bf16, layouts switched per phase).

use esti_bench::{banner, run_scenario_table, write_csv, ScenarioRow};
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent};
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Table 2: example configurations, PaLM 540B (paper values in parens)");
    let model = ModelConfig::palm_540b_padded();
    let rows = [
        ScenarioRow {
            name: "low-latency prefill",
            prefill: true,
            chips: 64,
            batch: 1,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            dtype: DType::Int8,
            paper_mfu: 43.0,
            paper_latency: 0.29,
        },
        ScenarioRow {
            name: "low-latency decode",
            prefill: false,
            chips: 64,
            batch: 64,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            dtype: DType::Int8,
            paper_mfu: 14.0,
            paper_latency: 1.82,
        },
        ScenarioRow {
            name: "high-throughput prefill",
            prefill: true,
            chips: 64,
            batch: 512,
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            dtype: DType::Bf16,
            paper_mfu: 76.0,
            paper_latency: 85.2,
        },
        ScenarioRow {
            name: "high-throughput decode",
            prefill: false,
            chips: 64,
            batch: 512,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            dtype: DType::Bf16,
            paper_mfu: 33.0,
            paper_latency: 6.0,
        },
    ];
    let csv = run_scenario_table(&model, &rows);
    write_csv(
        "table2.csv",
        "scenario,chips,batch,ffn,attn,dtype,mfu_pct,paper_mfu_pct,latency_s,paper_latency_s",
        &csv,
    );
}
