//! Figure B.1 — minimum prefill latency: cost vs latency at batch 1 as the
//! input sequence length sweeps 32..1024, for the PaLM family.

use esti_bench::{banner, write_csv};
use esti_core::perf::{estimate, PhaseSpec};
use esti_core::planner::prefill_layout;
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Figure B.1: batch-1 prefill cost vs latency, seq 32..1024");
    let mut rows = Vec::new();
    println!(
        "{:<22} {:>6} {:>6} {:>12} {:>15} {:>6}",
        "model", "chips", "seq", "latency ms", "chip-ms/token", "MFU%"
    );
    for model in [ModelConfig::palm_8b(), ModelConfig::palm_62b(), ModelConfig::palm_540b_padded()]
    {
        for n in [8usize, 16, 32, 64, 128, 256] {
            let Some(machine) = Machine::tpu_v4_slice(n) else { continue };
            for seq in [32usize, 64, 128, 256, 512, 1024] {
                let layout = prefill_layout(&model, &machine, 1, seq, DType::Int8);
                let est = estimate(&machine, &model, &layout, &PhaseSpec::prefill(1, seq), DType::Int8);
                if !est.fits {
                    continue;
                }
                println!(
                    "{:<22} {:>6} {:>6} {:>12.2} {:>15.3} {:>6.1}",
                    model.name,
                    n,
                    seq,
                    est.step_time * 1e3,
                    est.cost_chip_sec_per_token * 1e3,
                    est.mfu * 100.0
                );
                rows.push(format!(
                    "{},{n},{seq},{:.4},{:.5},{:.4}",
                    model.name,
                    est.step_time * 1e3,
                    est.cost_chip_sec_per_token * 1e3,
                    est.mfu
                ));
            }
        }
        println!();
    }
    write_csv("fig_b1.csv", "model,chips,seq,latency_ms,cost_chip_ms_per_token,mfu", &rows);
    println!("expected shape: even batch-1 prefill runs at moderate cost (Section 4.4).");
}
