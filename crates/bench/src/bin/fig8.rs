//! Figure 8 — decode latency per token vs context length for the 8-layer
//! PaLM 540B variant on 64 chips at batch 256, comparing multihead
//! attention, baseline multiquery (head-sharded, KV replicated), and the
//! optimized batch-sharded multiquery layout.
//!
//! Reproduced claims: the variants are close at short context; as context
//! grows, KV-cache memory time dominates the baseline layouts while the
//! optimized layout stays flat; on the *full* 118-layer model the baseline
//! layouts run out of memory beyond ~512 tokens (the dotted line).

use esti_bench::{banner, write_csv};
use esti_core::layout::{AttnSharding, FfnLayout, Layout};
use esti_core::memory;
use esti_core::perf::{estimate, PhaseSpec};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Figure 8: decode latency vs context length (8-layer 540B, batch 256)");
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let batch = 256usize;

    let mut mh8 = ModelConfig::palm_540b_multihead();
    mh8.n_layers = 8;
    mh8.n_heads = 64; // padded, matching the benchmark model
    let mut mq8 = ModelConfig::palm_540b_padded();
    mq8.n_layers = 8;

    let variants: Vec<(&str, ModelConfig, AttnSharding)> = vec![
        ("multihead", mh8, AttnSharding::Head),
        ("baseline MQ", mq8.clone(), AttnSharding::Head),
        ("optimized MQ", mq8, AttnSharding::Batch),
    ];

    println!(
        "{:>9} {:>14} {:>14} {:>14}   (ms/token; * = full 118-layer model OOM)",
        "context", "multihead", "baseline MQ", "optimized MQ"
    );
    let mut rows = Vec::new();
    for ctx in [128usize, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768] {
        let mut cells = Vec::new();
        let mut csv = vec![format!("{ctx}")];
        for (_, model, sharding) in &variants {
            let layout = Layout {
                ffn: FfnLayout::WeightStationary2D,
                attn: *sharding,
                mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
            };
            let est = estimate(&machine, model, &layout, &PhaseSpec::decode(batch, ctx), DType::Bf16);
            // OOM marker for the corresponding full-depth model.
            let mut full = model.clone();
            full.n_layers = 118;
            let oom = !memory::fits_in_memory(
                &machine, &full, *sharding, batch, ctx, DType::Bf16, DType::Bf16,
            );
            cells.push(format!("{:>12.2}{}", est.step_time * 1e3, if oom { "*" } else { " " }));
            csv.push(format!("{:.4},{}", est.step_time * 1e3, u8::from(oom)));
        }
        println!("{ctx:>9} {} {} {}", cells[0], cells[1], cells[2]);
        rows.push(csv.join(","));
    }
    write_csv(
        "fig8.csv",
        "context,mh_ms,mh_oom,mq_base_ms,mq_base_oom,mq_opt_ms,mq_opt_oom",
        &rows,
    );
    println!(
        "\nexpected shape: curves agree at short context; baseline layouts blow up with \
         context while optimized MQ stays nearly flat (paper: attention only 8-31% of \
         runtime even at 8k-32k tokens)."
    );
}
