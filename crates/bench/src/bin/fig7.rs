//! Figure 7 — prefill MFU on PaLM 540B (64 chips, sequence length 2048) as
//! batch size in tokens grows, for 2D weight-stationary vs the
//! weight-gathered layouts.
//!
//! Reproduced claims: WS 2D wins at small batch; weight-gathered layouts
//! become optimal as batch grows, topping out around the paper's 76% MFU.

use esti_bench::{banner, write_csv};
use esti_core::layout::{FfnLayout, GatherExtent, Layout};
use esti_core::perf::{estimate, PhaseSpec};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Figure 7: prefill MFU vs batch size in tokens (64 chips, seq 2048)");
    let model = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let mesh = Layout::ws2d_mesh(64, model.d_model, model.d_ff);
    let seq = 2048usize;

    let layouts: Vec<(&str, FfnLayout)> = vec![
        ("WS 2D", FfnLayout::WeightStationary2D),
        ("WG X", FfnLayout::WeightGathered(GatherExtent::X)),
        ("WG XY", FfnLayout::WeightGathered(GatherExtent::Xy)),
        ("WG XYZ", FfnLayout::WeightGathered(GatherExtent::Xyz)),
    ];

    print!("{:>10} {:>10}", "sequences", "tokens");
    for (name, _) in &layouts {
        print!(" {name:>8}");
    }
    println!(" {:>8}", "best");

    let mut rows = Vec::new();
    let mut peak = 0.0f64;
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let spec = PhaseSpec::prefill(batch, seq);
        let mfus: Vec<f64> = layouts
            .iter()
            .map(|(_, ffn)| {
                let layout = Layout {
                    ffn: *ffn,
                    attn: esti_core::planner::attn_sharding(&model, batch),
                    mesh,
                };
                estimate(&machine, &model, &layout, &spec, DType::Bf16).mfu
            })
            .collect();
        let best = mfus
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        peak = peak.max(mfus[best]);
        print!("{batch:>10} {:>10}", batch * seq);
        for m in &mfus {
            print!(" {:>7.1}%", m * 100.0);
        }
        println!(" {:>8}", layouts[best].0);
        rows.push(format!(
            "{batch},{},{}",
            batch * seq,
            mfus.iter().map(|m| format!("{m:.4}")).collect::<Vec<_>>().join(",")
        ));
    }
    write_csv("fig7.csv", "sequences,tokens,ws2d,wg_x,wg_xy,wg_xyz", &rows);
    println!(
        "\npeak prefill MFU {:.1}% (paper: 76% with weight-gathered at the largest batch)",
        peak * 100.0
    );
}
