//! `bench-runtime` — wall-clock benchmarks of the kernel core (AVX2 SIMD
//! GEMM with the scalar tiers as oracles) and the overlapped
//! (chunked-collective) executor. Written with plain
//! [`std::time::Instant`] so the numbers are real elapsed time, and dumped
//! to `BENCH_runtime.json` at the workspace root for the acceptance gate:
//!
//! * SIMD matmul >= 1.8x over the naive kernel at 256^3 and up;
//! * planner-chosen decode >= 1.2x over the pre-PR configuration
//!   (monolithic collectives + naive kernel) on the 8-chip 1D
//!   weight-stationary layout;
//! * the planner's chosen mode is never slower than monolithic on any
//!   decode layout (planned/mono >= 1.0x, chunk sweep k in {1,2,4,8,16});
//! * the measured hidden-communication fraction realizes >= 0.7x of what
//!   the probe-calibrated planner model predicts for k = 4 on ws1d;
//! * SIMD int8 GEMM >= 2.1x over the scalar oracle kernel at 256^3;
//! * int8 weight-gathered decode moves <= 0.55x the all-gather bytes of
//!   the f32 path (quantized wire format vs bf16-accounted dense) **and**
//!   its decode step is no slower than f32 (step ratio <= 1.0 — the
//!   regression the SIMD dequant path exists to flip);
//! * the deadline-based collective wait (PR 5's fault model) costs <= 1.05x
//!   of the blocking barrier on a fault-free decode step;
//! * the paged KV cache fits >= 2.0x the concurrent requests of the slab
//!   cache at an equal KV position budget on a shared-prefix workload,
//!   with bit-identical token streams (per-step paged-vs-slab overhead is
//!   reported and regression-flagged, not gated).
//!
//! The measured hiding fraction is additionally cross-checked against the
//! *datasheet-ideal* `esti_netsim::overlap` model, reported but not gated:
//! on a single-core host the thread-per-chip simulation cannot reach
//! disjoint-hardware overlap (every barrier is a context switch), which is
//! exactly why the hard gate compares against the calibrated model instead.

use std::time::Instant;

use esti_bench::{banner, results_dir};
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_core::perf::Phase;
use esti_core::serving::{
    simulate_trace, ArrivalProcess, ArrivalTrace, LengthDist, OverloadPolicy, Priority,
    ServingConfig, TraceSpec,
};
use esti_core::Machine;
use esti_hal::{ChipSpec, DType};
use esti_model::{AttentionKind, BlockKind, MlpKind, ModelConfig, PositionKind, ReferenceModel};
use esti_netsim::{looped_einsum_time, unfused_einsum_time, EinsumSpec};
use esti_runtime::planner::CANDIDATE_CHUNKS;
use esti_runtime::{
    planner_dtype, ContinuousBatcher, ExecMode, ExecPlanner, KvBackend, PartitionedEngine,
    ReplicaRouter, ServingOptions, ServingRequest, WeightFormat,
};
use esti_tensor::ops::{self, MatmulKernel};
use esti_tensor::{QuantizedMatrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum elapsed seconds of `f` over `reps` runs (after one warmup).
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A scaled-up tiny model whose matmuls are big enough to time: the
/// structure of `ModelConfig::tiny()` at `d_model` 256.
fn tiny8x() -> ModelConfig {
    ModelConfig {
        name: "tiny8x".to_owned(),
        n_layers: 2,
        d_model: 256,
        d_ff: 1024,
        n_heads: 8,
        d_head: 32,
        vocab: 128,
        attention: AttentionKind::MultiQuery,
        block: BlockKind::Parallel,
        mlp: MlpKind::SwiGlu,
        position: PositionKind::Rope,
        max_seq: 64,
    }
}

const BATCH: usize = 64;
const PREFILL_LEN: usize = 16;
const DECODE_STEPS: usize = 4;

fn prompts(vocab: usize) -> Vec<Vec<usize>> {
    (0..BATCH).map(|b| (0..PREFILL_LEN).map(|t| (b * 7 + t * 3 + 1) % vocab).collect()).collect()
}

/// Wall-clock seconds per decode step under one (exec, kernel) setting.
/// Each rep builds a fresh engine, prefills, then times `DECODE_STEPS`
/// decode steps.
fn decode_seconds(model: &ReferenceModel, layout: Layout, exec: ExecMode, kernel: MatmulKernel) -> f64 {
    ops::set_matmul_kernel(kernel);
    let vocab = model.config().vocab;
    let toks = prompts(vocab);
    let mut best = f64::INFINITY;
    for rep in 0..3 {
        let mut engine = PartitionedEngine::new_with_exec(model, layout, WeightFormat::Exact, exec);
        let _ = engine.prefill(&toks);
        let mut next: Vec<usize> = (0..BATCH).map(|b| (b + rep) % vocab).collect();
        let t = Instant::now();
        for _ in 0..DECODE_STEPS {
            let logits = engine.decode_step(&next);
            next = (0..BATCH).map(|b| (b + logits.shape()[0]) % vocab).collect();
        }
        best = best.min(t.elapsed().as_secs_f64() / DECODE_STEPS as f64);
    }
    ops::set_matmul_kernel(MatmulKernel::Simd);
    best
}

/// Total nanoseconds chips spent blocked inside **all-reduce** collectives
/// over `DECODE_STEPS` decode steps (untimed run, blocked kernel). The
/// all-reduces are the chunkable sites of the ws1d schedule — the ops the
/// planner's hidden-fraction prediction covers — so restricting the ledger
/// to them compares like for like (the attention all-to-alls are never
/// chunked; their blocked time is identical noise in both variants).
fn decode_ar_nanos(engine: &mut PartitionedEngine, vocab: usize) -> u64 {
    engine.reset_comm_times();
    let next: Vec<usize> = (0..BATCH).map(|b| b % vocab).collect();
    for _ in 0..DECODE_STEPS {
        let _ = engine.decode_step(&next);
    }
    engine
        .comm_times()
        .iter()
        .map(|t| t.nanos(esti_collectives::CollectiveOp::AllReduce))
        .sum()
}

/// Hidden-communication fraction `1 - blocked_overlapped /
/// blocked_monolithic` from the least-noise (minimum) blocked measurement
/// of each variant over `reps` interleaved runs, plus those blocked nanos.
/// The minimum is the stable estimator for a timing whose noise is purely
/// additive (scheduler preemption only ever *adds* blocked wait);
/// interleaving keeps slow machine-load drift from biasing one variant.
fn measured_hidden(model: &ReferenceModel, layout: Layout, chunks: usize, reps: usize) -> (f64, u64, u64) {
    let vocab = model.config().vocab;
    let toks = prompts(vocab);
    let mut eng_mono =
        PartitionedEngine::new_with_exec(model, layout, WeightFormat::Exact, ExecMode::Monolithic);
    let _ = eng_mono.prefill(&toks);
    let mut eng_over = PartitionedEngine::new_with_exec(
        model,
        layout,
        WeightFormat::Exact,
        ExecMode::Overlapped { chunks },
    );
    let _ = eng_over.prefill(&toks);
    let (mut mono, mut over) = (u64::MAX, u64::MAX);
    for _ in 0..reps {
        mono = mono.min(decode_ar_nanos(&mut eng_mono, vocab));
        over = over.min(decode_ar_nanos(&mut eng_over, vocab));
    }
    #[allow(clippy::cast_precision_loss)]
    (1.0 - over as f64 / mono as f64, mono, over)
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let mut json = String::from("{\n");

    banner("Matmul kernel: AVX2 SIMD vs cache-blocked vs naive (square, f32)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "n", "naive us", "blocked us", "simd us", "speedup"
    );
    let mut rng = StdRng::seed_from_u64(7);
    json.push_str("  \"matmul\": [\n");
    let mut gate_256 = 0.0f64;
    for (i, &n) in [128usize, 256, 384].iter().enumerate() {
        let a = Tensor::randn(&mut rng, vec![n, n], 1.0);
        let b = Tensor::randn(&mut rng, vec![n, n], 1.0);
        ops::set_matmul_kernel(MatmulKernel::Naive);
        let naive = time_best(5, || {
            let _ = ops::matmul(&a, &b);
        });
        ops::set_matmul_kernel(MatmulKernel::Blocked);
        let blocked = time_best(5, || {
            let _ = ops::matmul(&a, &b);
        });
        ops::set_matmul_kernel(MatmulKernel::Simd);
        let simd = time_best(5, || {
            let _ = ops::matmul(&a, &b);
        });
        let speedup = naive / simd;
        if n == 256 {
            gate_256 = speedup;
        }
        println!(
            "{n:>6} {:>12.1} {:>12.1} {:>12.1} {speedup:>8.2}",
            naive * 1e6,
            blocked * 1e6,
            simd * 1e6
        );
        json.push_str(&format!(
            "    {{\"n\": {n}, \"naive_us\": {:.3}, \"blocked_us\": {:.3}, \"simd_us\": {:.3}, \"speedup\": {speedup:.4}}}{}\n",
            naive * 1e6,
            blocked * 1e6,
            simd * 1e6,
            if i == 2 { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");

    banner("Int8 GEMM: AVX2 SIMD widen+fold vs cache-blocked vs scalar oracle (square)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "n", "scalar us", "blocked us", "simd us", "speedup"
    );
    json.push_str("  \"int8_matmul\": [\n");
    let mut gate_q256 = 0.0f64;
    for (i, &n) in [128usize, 256, 384].iter().enumerate() {
        let a = Tensor::randn(&mut rng, vec![n, n], 1.0);
        let w = QuantizedMatrix::quantize(&Tensor::randn(&mut rng, vec![n, n], 1.0));
        ops::set_matmul_kernel(MatmulKernel::Naive);
        let scalar = time_best(5, || {
            let _ = w.matmul(&a);
        });
        ops::set_matmul_kernel(MatmulKernel::Blocked);
        let blocked = time_best(5, || {
            let _ = w.matmul(&a);
        });
        ops::set_matmul_kernel(MatmulKernel::Simd);
        let simd = time_best(5, || {
            let _ = w.matmul(&a);
        });
        let speedup = scalar / simd;
        if n == 256 {
            gate_q256 = speedup;
        }
        println!(
            "{n:>6} {:>12.1} {:>12.1} {:>12.1} {speedup:>8.2}",
            scalar * 1e6,
            blocked * 1e6,
            simd * 1e6
        );
        json.push_str(&format!(
            "    {{\"n\": {n}, \"scalar_us\": {:.3}, \"blocked_us\": {:.3}, \"simd_us\": {:.3}, \"speedup\": {speedup:.4}}}{}\n",
            scalar * 1e6,
            blocked * 1e6,
            simd * 1e6,
            if i == 2 { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");

    banner("Decode step: tiny8x, batch 64, 8 chips — chunk sweep + planner");
    let model = ReferenceModel::init_random(tiny8x(), 11);
    let ws1d = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 8, 1),
    };
    let ws2d = Layout {
        ffn: FfnLayout::WeightStationary2D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(2, 2, 2),
    };
    let wg = Layout {
        ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(8, 1, 1),
    };
    println!(
        "{:<16} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "layout", "pre-PR us", "k=1 us", "k=2 us", "k=4 us", "k=8 us", "k=16 us", "planned", "speedup"
    );
    json.push_str("  \"decode\": [\n");
    let mut gate_1d = 0.0f64;
    // Worst planned-vs-monolithic ratio over the decode layouts: the
    // planner must never pick a mode that loses to monolithic.
    let mut gate_planned = f64::INFINITY;
    for (i, (name, layout)) in
        [("ws1d_8chips", ws1d), ("ws2d_2x2x2", ws2d), ("wg_xyz_8chips", wg)].into_iter().enumerate()
    {
        // Pre-PR configuration: monolithic collectives, naive kernel.
        let base = decode_seconds(&model, layout, ExecMode::Monolithic, MatmulKernel::Naive);
        // Chunk-size sweep with the shipped SIMD kernel: k = 1 is the
        // monolithic schedule (same looped code path, one chunk), larger k
        // buys overlap on parallel hosts at k extra barriers per
        // collective.
        let sweep: Vec<(usize, f64)> = CANDIDATE_CHUNKS
            .iter()
            .map(|&k| {
                let exec = if k == 1 {
                    ExecMode::Monolithic
                } else {
                    ExecMode::Overlapped { chunks: k }
                };
                (k, decode_seconds(&model, layout, exec, MatmulKernel::Simd))
            })
            .collect();
        let mono = sweep[0].1;
        // The planner's pick for this layout's decode shape, priced with
        // the *same* dtype the engine executes (f32 weights here) and the
        // same probe-calibrated cost model `PartitionedEngine::new`
        // applies. `planned_us` is the sweep row of the chosen chunk
        // count — a measurement, not a prediction.
        let dtype = planner_dtype(WeightFormat::Exact);
        let decision =
            ExecPlanner::new(model.config(), layout, dtype).decide(Phase::Decode, BATCH, 1);
        assert_eq!(
            decision.dtype, dtype,
            "planner ledger must record the dtype the decision was priced with"
        );
        let planned_k = match decision.chosen {
            ExecMode::Monolithic => 1,
            ExecMode::Overlapped { chunks } => chunks,
        };
        let planned = sweep.iter().find(|&&(k, _)| k == planned_k).map_or(mono, |&(_, t)| t);
        let speedup = base / planned;
        let planned_vs_mono = mono / planned;
        gate_planned = gate_planned.min(planned_vs_mono);
        if i == 0 {
            gate_1d = speedup;
        }
        print!("{name:<16} {:>11.0}", base * 1e6);
        for &(_, t) in &sweep {
            print!(" {:>9.0}", t * 1e6);
        }
        println!(" {:>8}k={planned_k} {speedup:>8.2}", "");
        let sweep_json = sweep
            .iter()
            .map(|&(k, t)| format!("{{\"chunks\": {k}, \"us\": {:.1}}}", t * 1e6))
            .collect::<Vec<_>>()
            .join(", ");
        // A decode row regresses if the planner's pick loses to monolithic
        // *or* the planned configuration loses to the pre-PR baseline
        // outright; flagged rows must carry a tracking pointer (ci.sh
        // rejects untracked regressions).
        let regression = planned_vs_mono < 1.0 || speedup < 1.0;
        let tracking = if regression {
            ", \"tracking\": \"ROADMAP item 1: single-core host serializes the chip \
             threads; re-run the sweep on a multicore runner\""
        } else {
            ""
        };
        json.push_str(&format!(
            "    {{\"layout\": \"{name}\", \"baseline_us\": {:.1}, \"mono_simd_us\": {:.1}, \
             \"sweep\": [{sweep_json}], \"planned_chunks\": {planned_k}, \"planned_us\": {:.1}, \
             \"planner_dtype\": \"f32\", \
             \"planned_vs_mono\": {planned_vs_mono:.4}, \"speedup\": {speedup:.4}, \
             \"regression\": {regression}{tracking}}}{}\n",
            base * 1e6,
            mono * 1e6,
            planned * 1e6,
            if i == 2 { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");

    banner("Communication blocking time and overlap cross-check (ws1d)");
    let ws1d = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 8, 1),
    };
    let (measured_hidden, comm_mono, comm_over) = measured_hidden(&model, ws1d, 4, 5);
    // Analytic counterpart #1 (reference only): the netsim Looped
    // CollectiveEinsum model at TPU v4 datasheet rates — what the overlap
    // would hide on real accelerator links, where transport and compute
    // run on disjoint hardware.
    let chip = ChipSpec::tpu_v4();
    let cfg = model.config();
    let rows = BATCH as f64;
    let bytes_per_shard = rows * cfg.d_model as f64 * 2.0 / 8.0;
    let flops_per_shard =
        2.0 * rows * (cfg.d_model as f64 / 8.0) * (cfg.d_ff + cfg.n_heads * cfg.d_head) as f64;
    let spec = EinsumSpec::new(8, bytes_per_shard, flops_per_shard);
    let unfused = unfused_einsum_time(&chip, &spec);
    let fused = looped_einsum_time(&chip, &spec);
    let ideal_hidden = 1.0 - fused / unfused;
    // Analytic counterpart #2 (the gate): the planner's calibrated model —
    // the same `chunked_blocked_time` closed form, fed the probe's measured
    // host constants (transport rate, fold overhead, realized hiding
    // efficiency). This is the prediction the planner stakes its decisions
    // on, so the measured pipeline must realize at least 70% of it.
    let analytic_hidden = ExecPlanner::new(model.config(), ws1d, planner_dtype(WeightFormat::Exact))
        .decide(Phase::Decode, BATCH, 1)
        .candidates
        .iter()
        .find(|c| c.chunks == 4)
        .map_or(0.0, |c| c.hidden_fraction);
    // The measured fraction must reach the analytic prediction from below,
    // up to 30% relative model slack (the >= 0.7x-analytic criterion) plus
    // a five-point absolute jitter allowance: the AR blocked-time ledger
    // swings a few points run to run even with the min-of-reps estimator,
    // and around zero (a serialized host hides nothing, and the calibrated
    // model honestly predicts *negative* hiding there — the chunk barriers
    // it exists to cost) relative slack alone would gate on pure scheduler
    // noise. For positive analytic this reads `0.7x analytic − 0.05`.
    let gate_hidden_floor = analytic_hidden - 0.3 * analytic_hidden.abs() - 0.05;
    println!(
        "measured: blocked {:.0} us monolithic vs {:.0} us overlapped (hidden fraction {measured_hidden:.2})",
        comm_mono as f64 / 1e3,
        comm_over as f64 / 1e3,
    );
    println!(
        "analytic (calibrated planner model, k=4): hidden fraction {analytic_hidden:.2} \
         (gate: measured >= floor {gate_hidden_floor:.3})"
    );
    println!(
        "analytic (netsim, TPU v4 datasheet): fused {:.2} us vs unfused {:.2} us (hidden fraction {ideal_hidden:.2}; reference only —",
        fused * 1e6,
        unfused * 1e6,
    );
    println!("single-core hosts serialize the chip threads, so measured cannot reach datasheet overlap)");
    json.push_str(&format!(
        "  \"overlap_crosscheck\": {{\"comm_blocked_monolithic_us\": {:.1}, \"comm_blocked_overlapped_us\": {:.1}, \"measured_hidden_fraction\": {measured_hidden:.4}, \"analytic_hidden_fraction\": {analytic_hidden:.4}, \"ideal_hidden_fraction\": {ideal_hidden:.4}}},\n",
        comm_mono as f64 / 1e3,
        comm_over as f64 / 1e3,
    ));

    banner("Int8 on the wire: weight-gathered decode bytes vs f32 (wg_xyz, 8 chips)");
    // One decode step under the fully weight-gathered dataflow moves every
    // weight matrix over the interconnect. With int8 shards the collectives
    // carry the quantized wire format (1 byte/value + a per-column f32
    // scale), so the all-gather byte volume must drop to roughly half of
    // the bf16-accounted dense volume.
    let decode_ag_bytes = |fmt: WeightFormat| {
        let mut engine =
            PartitionedEngine::new_with_exec(&model, wg, fmt, ExecMode::Overlapped { chunks: 4 });
        let _ = engine.prefill(&prompts(cfg.vocab));
        engine.traffic().reset();
        let next: Vec<usize> = (0..BATCH).map(|b| b % cfg.vocab).collect();
        let _ = engine.decode_step(&next);
        engine.traffic().bytes(esti_collectives::CollectiveOp::AllGather)
    };
    let wg_f32 = decode_ag_bytes(WeightFormat::Exact);
    let wg_int8 = decode_ag_bytes(WeightFormat::Int8);
    let gate_wire = wg_int8 as f64 / wg_f32 as f64;
    println!(
        "all-gather bytes per decode step: f32 {wg_f32} vs int8 {wg_int8} (ratio {gate_wire:.3})"
    );
    // Wall-clock per decode step, same layout. Gated at <= 1.0x of f32:
    // with the SIMD widen-and-fold dequant the quantized path must at
    // least break even on step time while moving half the bytes (the
    // shared-memory mailboxes move pointers, so the wire win itself shows
    // up in the byte ratio above, not in a link's transfer time).
    let step_time = |fmt: WeightFormat| {
        let mut engine =
            PartitionedEngine::new_with_exec(&model, wg, fmt, ExecMode::Overlapped { chunks: 4 });
        let _ = engine.prefill(&prompts(cfg.vocab));
        let next: Vec<usize> = (0..BATCH).map(|b| b % cfg.vocab).collect();
        time_best(3, || {
            let _ = engine.decode_step(&next);
        })
    };
    let t_f32 = step_time(WeightFormat::Exact);
    let t_int8 = step_time(WeightFormat::Int8);
    let gate_step = t_int8 / t_f32;
    println!(
        "decode step wall-clock: f32 {:.0} us vs int8 {:.0} us (ratio {gate_step:.3})",
        t_f32 * 1e6,
        t_int8 * 1e6,
    );
    // This step-time ratio used to be a tracked regression: int8 halved
    // the wire bytes but the scalar dequant cost ate the win. The SIMD
    // widen-and-fold kernel flipped it, so the ratio is now *gated* at
    // <= 1.0; the `tracking` pointer only reappears if the row regresses
    // again (ci.sh rejects flagged rows without one).
    let wire_regression = t_int8 > t_f32;
    let wire_tracking = if wire_regression {
        ", \"tracking\": \"ROADMAP item 5: SIMD + intra-chip parallel kernel core\""
    } else {
        ""
    };
    json.push_str(&format!(
        "  \"int8_wire\": {{\"wg_xyz_decode_ag_bytes_f32\": {wg_f32}, \"wg_xyz_decode_ag_bytes_int8\": {wg_int8}, \"ratio\": {gate_wire:.4}, \"wg_xyz_decode_us_f32\": {:.1}, \"wg_xyz_decode_us_int8\": {:.1}, \"step_ratio\": {gate_step:.4}, \"regression\": {wire_regression}{wire_tracking}}},\n",
        t_f32 * 1e6,
        t_int8 * 1e6,
    ));

    banner("Serving: continuous batching vs serial (tiny8x, 8 chips, ws1d)");
    // The Section 4.4 effect measured end to end: the same request stream
    // served through the continuous-batching scheduler at full decode
    // capacity vs forced batch-1 (serial) decode. Head-sharded attention so
    // a batch-1 decode tier is a valid layout.
    let serve_layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 8, 1),
    };
    let (serve_n, serve_prompt, serve_gen, serve_cap) = (12usize, 12usize, 8usize, 8usize);
    let serve_requests: Vec<ServingRequest> = (0..serve_n)
        .map(|i| ServingRequest {
            prompt: (0..serve_prompt).map(|t| (i * 7 + t * 3 + 1) % cfg.vocab).collect(),
            max_new_tokens: serve_gen,
            seed: i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect();
    let serve_tput = |cap: usize| {
        let opts = ServingOptions { max_decode_batch: cap, ..ServingOptions::default() };
        let mut batcher = ContinuousBatcher::new(&model, serve_layout, WeightFormat::Exact, opts);
        let mut best = 0.0f64;
        for _ in 0..2 {
            best = best.max(batcher.serve(&serve_requests).throughput_tokens_per_sec());
        }
        best
    };
    let batched_tput = serve_tput(serve_cap);
    let serial_tput = serve_tput(1);
    let gate_serving = batched_tput / serial_tput;
    println!(
        "{serve_n} requests x ({serve_prompt} prompt + {serve_gen} generated) tokens: \
         batched (cap {serve_cap}) {batched_tput:.0} tok/s vs serial {serial_tput:.0} tok/s \
         ({gate_serving:.2}x)"
    );
    json.push_str(&format!(
        "  \"serving\": {{\"requests\": {serve_n}, \"prompt_len\": {serve_prompt}, \"gen_len\": {serve_gen}, \
         \"decode_batch\": {serve_cap}, \"batched_tok_per_s\": {batched_tput:.1}, \
         \"serial_tok_per_s\": {serial_tput:.1}, \"batching_speedup\": {gate_serving:.4}}},\n"
    ));

    banner("Overload: 1e5-request bursty trace, SLO scheduler (PaLM 540B, 64 chips, simulated)");
    // The ISSUE's acceptance trace: a seeded Markov-modulated arrival
    // process whose bursts offer ~2x the analytic decode ceiling, ragged
    // prompt/output lengths, three priority classes. The SLO scheduler
    // (priority admission + preemption + typed shedding) must keep goodput
    // at >= 0.7x of the capacity ceiling while holding the high class's
    // p99 TTFT — overload degrades the low class, never the whole system.
    let palm = ModelConfig::palm_540b_padded();
    let serve_cfg = ServingConfig {
        prefill_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        decode_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        max_decode_batch: 64,
        input_len: 64,
        gen_len: 64,
        weight_dtype: DType::Int8,
    };
    let trace_spec = TraceSpec {
        process: ArrivalProcess::Bursty { calm_rate: 5.0, burst_rate: 50.0, mean_dwell: 5.0 },
        prompt: LengthDist::Uniform { lo: 32, hi: 96 },
        output: LengthDist::Uniform { lo: 128, hi: 256 },
        high_fraction: 0.1,
        low_fraction: 0.3,
    };
    let trace_n = 100_000usize;
    let trace = ArrivalTrace::generate(&trace_spec, trace_n, 11);
    let policy = OverloadPolicy {
        queue_limit: Some(256),
        ttft_deadline: [Some(20.0), Some(30.0), Some(60.0)],
        preemption: true,
    };
    let t = Instant::now();
    let over = simulate_trace(&palm, &serve_cfg, &trace, &policy);
    let sim_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        over.completed.len() + over.shed.len(),
        trace_n,
        "request conservation: every request completes or sheds"
    );
    let gate_goodput = over.goodput_ratio();
    let gate_high_p99 = over.class_ttft_percentile(Priority::High, 99.0);
    println!(
        "{trace_n} requests over {:.0}s simulated (offered {:.0} tok/s) walked in {sim_secs:.1}s wall",
        trace.duration(),
        trace.offered_token_rate(),
    );
    println!(
        "goodput {:.0} tok/s = {gate_goodput:.2}x of the {:.0} tok/s capacity ceiling; \
         {} completed, {} shed, {} preemptions",
        over.goodput_tokens_per_sec(),
        over.capacity_tokens_per_sec,
        over.completed.len(),
        over.shed.len(),
        over.preemptions,
    );
    println!(
        "high class: {} completed / {} shed, p99 ttft {gate_high_p99:.2}s (low class sheds {})",
        over.class_completed(Priority::High),
        over.class_shed(Priority::High),
        over.class_shed(Priority::Low),
    );
    json.push_str(&format!(
        "  \"overload\": {{\"requests\": {trace_n}, \"trace_seconds\": {:.1}, \
         \"offered_tok_per_s\": {:.1}, \"capacity_tok_per_s\": {:.1}, \
         \"goodput_tok_per_s\": {:.1}, \"goodput_ratio\": {gate_goodput:.4}, \
         \"completed\": {}, \"shed\": {}, \"preemptions\": {}, \"replayed_tokens\": {}, \
         \"high_p99_ttft_s\": {gate_high_p99:.4}, \"low_shed\": {}, \"sim_wall_s\": {sim_secs:.2}}},\n",
        trace.duration(),
        trace.offered_token_rate(),
        over.capacity_tokens_per_sec,
        over.goodput_tokens_per_sec(),
        over.completed.len(),
        over.shed.len(),
        over.preemptions,
        over.replayed_tokens,
        over.class_shed(Priority::Low),
    ));

    banner("Router failover: injected replica crash (tiny8x, 2x2 chips, live engine)");
    // Two live replicas; a chip crash with zero recovery budget kills
    // replica 0 on its first decode step. The router must drain it and
    // re-route its whole share with zero lost requests and streams
    // bit-identical to a fault-free single-batcher run.
    let rt_layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let rt_opts = ServingOptions { max_decode_batch: 2, ..ServingOptions::default() };
    let rt_model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let rt_vocab = rt_model.config().vocab;
    let rt_requests: Vec<ServingRequest> = (0..6)
        .map(|i| ServingRequest {
            prompt: (0..3).map(|t| (3 + 5 * i + 7 * t) % rt_vocab).collect(),
            max_new_tokens: 4,
            seed: i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect();
    let baseline = {
        let mut b = ContinuousBatcher::new(&rt_model, rt_layout, WeightFormat::Exact, rt_opts);
        b.serve(&rt_requests).outputs
    };
    let mut rt = ReplicaRouter::new(&rt_model, rt_layout, WeightFormat::Exact, rt_opts, 2);
    rt.batcher_mut(0).set_max_recoveries(0);
    rt.batcher_mut(0)
        .schedule_decode_fault(0, esti_collectives::FaultPlan::new().crash(1, 0));
    let rt_outcome = rt.try_serve(&rt_requests).expect("survivor absorbs the share");
    let gate_lost = rt_outcome.outputs.iter().filter(|o| o.is_empty()).count();
    let rt_identical = rt_outcome.outputs == baseline;
    println!(
        "replica 0 crashed: {} failover re-routed {} requests; {gate_lost} of {} lost; \
         streams identical to fault-free baseline: {rt_identical}",
        rt_outcome.report.recovery.failovers,
        rt_outcome.report.recovery.requests_rerouted,
        rt_requests.len(),
    );
    json.push_str(&format!(
        "  \"router_failover\": {{\"replicas\": 2, \"requests\": {}, \"failovers\": {}, \
         \"requests_rerouted\": {}, \"lost\": {gate_lost}, \"streams_identical\": {rt_identical}, \
         \"served_per_replica\": {:?}}},\n",
        rt_requests.len(),
        rt_outcome.report.recovery.failovers,
        rt_outcome.report.recovery.requests_rerouted,
        rt_outcome.served_per_replica,
    ));

    banner("Paged KV cache: shared-prefix capacity at equal KV budget (ws1d, 8 chips)");
    // The paged-KV capacity claim measured end to end: 16 requests share a
    // 48-token system prefix (6 eight-token pages) with 8 unique prompt
    // tokens and 8 generated, served under a 256-position KV budget. The
    // slab cache pre-charges a full max_seq (64) reservation per slot — 4
    // concurrent requests; the paged admission ledger charges the shared
    // prefix pages once and only unique tails per request, so 13 fit in
    // the same budget. Token streams must stay bit-identical.
    let (kv_shared, kv_unique, kv_new, kv_budget, kv_page) =
        (48usize, 8usize, 8usize, 256usize, 8usize);
    let kv_requests: Vec<ServingRequest> = (0..16)
        .map(|i| {
            let mut prompt: Vec<usize> =
                (0..kv_shared).map(|t| (11 + 13 * t) % cfg.vocab).collect();
            prompt.extend((0..kv_unique).map(|t| (3 + 5 * i + 7 * t) % cfg.vocab));
            ServingRequest { prompt, max_new_tokens: kv_new, seed: 40 + i as u64, arrival: 0.0, priority: Priority::Normal }
        })
        .collect();
    let serve_kv = |backend: KvBackend| {
        let opts = ServingOptions {
            max_decode_batch: 13,
            kv_backend: Some(backend),
            kv_position_budget: Some(kv_budget),
            ..ServingOptions::default()
        };
        let mut batcher = ContinuousBatcher::new(&model, serve_layout, WeightFormat::Exact, opts);
        batcher.serve(&kv_requests)
    };
    let kv_slab = serve_kv(KvBackend::Slab);
    let kv_paged = serve_kv(KvBackend::Paged { page_size: kv_page });
    assert_eq!(
        kv_paged.outputs, kv_slab.outputs,
        "paged token streams must be bit-identical to slab"
    );
    let gate_paged =
        kv_paged.report.peak_decode_batch as f64 / kv_slab.report.peak_decode_batch as f64;
    println!(
        "16 requests x ({kv_shared} shared + {kv_unique} unique prompt, {kv_new} generated), \
         {kv_budget}-position budget: slab fits {} concurrent vs paged {} \
         ({gate_paged:.2}x, {} prefix pages shared)",
        kv_slab.report.peak_decode_batch,
        kv_paged.report.peak_decode_batch,
        kv_paged.report.kv_pages_shared,
    );
    // Per-step overhead of the page-table indirection, reported and
    // regression-flagged (not gated): a slab-backed vs paged-backed decode
    // step on the same layout must stay within noise of each other.
    let kv_step_time = |backend: KvBackend| {
        let toks = prompts(cfg.vocab);
        let mut best = f64::INFINITY;
        for rep in 0..3 {
            let mut engine = PartitionedEngine::new_with_exec(
                &model,
                ws1d,
                WeightFormat::Exact,
                ExecMode::Monolithic,
            );
            engine.set_kv_backend(backend);
            let _ = engine.prefill(&toks);
            let mut next: Vec<usize> = (0..BATCH).map(|b| (b + rep) % cfg.vocab).collect();
            let t = Instant::now();
            for _ in 0..DECODE_STEPS {
                let logits = engine.decode_step(&next);
                next = (0..BATCH).map(|b| (b + logits.shape()[0]) % cfg.vocab).collect();
            }
            best = best.min(t.elapsed().as_secs_f64() / DECODE_STEPS as f64);
        }
        best
    };
    let t_kv_slab = kv_step_time(KvBackend::Slab);
    let t_kv_paged = kv_step_time(KvBackend::Paged { page_size: esti_runtime::DEFAULT_KV_PAGE_SIZE });
    let kv_step_ratio = t_kv_paged / t_kv_slab;
    println!(
        "decode step wall-clock: slab {:.0} us vs paged {:.0} us (ratio {kv_step_ratio:.3})",
        t_kv_slab * 1e6,
        t_kv_paged * 1e6,
    );
    let kv_regression = kv_step_ratio > 1.05;
    let kv_tracking = if kv_regression {
        ", \"tracking\": \"ROADMAP item 1: single-core host serializes the chip \
         threads; page-table gathers amortize on a multicore runner\""
    } else {
        ""
    };
    json.push_str(&format!(
        "  \"paged_kv\": {{\"shared_prompt\": {kv_shared}, \"unique_prompt\": {kv_unique}, \
         \"gen_len\": {kv_new}, \"page_size\": {kv_page}, \"kv_position_budget\": {kv_budget}, \
         \"slab_peak_batch\": {}, \"paged_peak_batch\": {}, \"capacity_ratio\": {gate_paged:.4}, \
         \"paged_pages_shared\": {}, \"decode_us_slab\": {:.1}, \"decode_us_paged\": {:.1}, \
         \"step_ratio\": {kv_step_ratio:.4}, \"regression\": {kv_regression}{kv_tracking}}},\n",
        kv_slab.report.peak_decode_batch,
        kv_paged.report.peak_decode_batch,
        kv_paged.report.kv_pages_shared,
        t_kv_slab * 1e6,
        t_kv_paged * 1e6,
    ));

    banner("Fault-free overhead of the deadline barrier (ws1d, 8 chips)");
    // PR 5 converted every collective wait from block-forever to a
    // deadline-based wait (`Condvar::wait_timeout`) so a dead or stalled
    // chip surfaces as a structured error instead of hanging. The deadline
    // must be ~free on the healthy path: this times decode steps with the
    // default deadline armed vs explicitly disarmed (the pre-PR blocking
    // barrier) and gates the ratio at 1.05x.
    let build_engine = |deadline: Option<std::time::Duration>| {
        let mut engine = PartitionedEngine::new_with_exec(
            &model,
            ws1d,
            WeightFormat::Exact,
            ExecMode::Overlapped { chunks: 4 },
        );
        engine.set_collective_deadline(deadline);
        let _ = engine.prefill(&prompts(cfg.vocab));
        engine
    };
    let mut eng_blocking = build_engine(None);
    let mut eng_deadline = build_engine(Some(esti_runtime::DEFAULT_COLLECTIVE_DEADLINE));
    let next: Vec<usize> = (0..BATCH).map(|b| b % cfg.vocab).collect();
    // Interleave the two measurements round-by-round so slow drift in
    // machine load (thermal, co-tenant noise) hits both variants equally
    // instead of biasing whichever happens to run second.
    let (mut t_blocking, mut t_deadline) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..9 {
        t_blocking = t_blocking.min(time_best(1, || {
            for _ in 0..DECODE_STEPS {
                let _ = eng_blocking.decode_step(&next);
            }
        }));
        t_deadline = t_deadline.min(time_best(1, || {
            for _ in 0..DECODE_STEPS {
                let _ = eng_deadline.decode_step(&next);
            }
        }));
    }
    let t_blocking = t_blocking / DECODE_STEPS as f64;
    let t_deadline = t_deadline / DECODE_STEPS as f64;
    let gate_deadline = t_deadline / t_blocking;
    println!(
        "decode step: blocking barrier {:.0} us vs deadline barrier {:.0} us (ratio {gate_deadline:.3})",
        t_blocking * 1e6,
        t_deadline * 1e6
    );
    json.push_str(&format!(
        "  \"fault_overhead\": {{\"decode_us_blocking\": {:.1}, \"decode_us_deadline\": {:.1}, \"ratio\": {gate_deadline:.4}}},\n",
        t_blocking * 1e6,
        t_deadline * 1e6
    ));

    banner("Per-chip communication summary (ws1d overlapped, 4 decode steps)");
    let mut engine =
        PartitionedEngine::new_with_exec(&model, ws1d, WeightFormat::Exact, ExecMode::Overlapped { chunks: 4 });
    let _ = engine.prefill(&prompts(cfg.vocab));
    engine.reset_comm_times();
    let next: Vec<usize> = (0..BATCH).map(|b| b % cfg.vocab).collect();
    for _ in 0..DECODE_STEPS {
        let _ = engine.decode_step(&next);
    }
    print!("{}", engine.comm_time_summary());

    json.push_str(&format!(
        "  \"gates\": {{\"matmul_256_speedup\": {gate_256:.4}, \"matmul_256_required\": 1.8, \"decode_ws1d_speedup\": {gate_1d:.4}, \"decode_ws1d_required\": 1.2, \"planned_vs_mono_min\": {gate_planned:.4}, \"planned_vs_mono_required\": 1.0, \"overlap_hidden_measured\": {measured_hidden:.4}, \"overlap_hidden_required\": {gate_hidden_floor:.4}, \"serving_batching_speedup\": {gate_serving:.4}, \"serving_batching_required\": 1.1, \"int8_matmul_256_speedup\": {gate_q256:.4}, \"int8_matmul_256_required\": 2.1, \"int8_wg_decode_byte_ratio\": {gate_wire:.4}, \"int8_wg_decode_byte_ratio_max\": 0.55, \"int8_wg_decode_step_ratio\": {gate_step:.4}, \"int8_wg_decode_step_ratio_max\": 1.0, \"paged_capacity_ratio\": {gate_paged:.4}, \"paged_capacity_required\": 2.0, \"deadline_overhead_ratio\": {gate_deadline:.4}, \"deadline_overhead_max\": 1.05, \"overload_goodput_ratio\": {gate_goodput:.4}, \"overload_goodput_required\": 0.7, \"overload_high_p99_ttft_s\": {gate_high_p99:.4}, \"overload_high_p99_ttft_max_s\": 1.0, \"router_failover_lost\": {gate_lost}, \"router_failover_lost_max\": 0, \"router_failover_streams_identical\": {rt_identical}}}\n}}\n"
    ));

    let root = results_dir().parent().map_or_else(|| std::path::PathBuf::from("."), std::path::Path::to_path_buf);
    let path = root.join("BENCH_runtime.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\n[wrote {}]", path.display()),
        Err(e) => eprintln!("note: cannot write {}: {e}", path.display()),
    }

    banner("Acceptance gates");
    println!("matmul 256^3 simd/naive: {gate_256:.2}x (require >= 1.8x)");
    println!("decode ws1d planned vs pre-PR: {gate_1d:.2}x (require >= 1.2x)");
    println!("planned vs monolithic, worst decode layout: {gate_planned:.2}x (require >= 1.0x)");
    println!(
        "measured hidden-comm fraction: {measured_hidden:.3} (require >= calibrated-analytic floor {gate_hidden_floor:.3})"
    );
    println!("serving continuous batching vs serial: {gate_serving:.2}x (require >= 1.1x)");
    println!("int8 GEMM 256^3 simd/scalar: {gate_q256:.2}x (require >= 2.1x)");
    println!("int8 WG decode all-gather bytes vs f32: {gate_wire:.3} (require <= 0.55)");
    println!("int8 WG decode step time vs f32: {gate_step:.3} (require <= 1.0)");
    println!("paged KV shared-prefix capacity vs slab: {gate_paged:.2}x (require >= 2.0x)");
    println!("deadline barrier vs blocking barrier decode step: {gate_deadline:.3} (require <= 1.05)");
    println!("overload goodput vs capacity ceiling: {gate_goodput:.2}x (require >= 0.7x)");
    println!("overload high-class p99 TTFT: {gate_high_p99:.2}s (require <= 1.0s)");
    println!(
        "router failover lost requests: {gate_lost} (require 0, streams identical: {rt_identical})"
    );
    assert!(gate_256 >= 1.8, "matmul gate failed: {gate_256:.2}x < 1.8x");
    assert!(gate_1d >= 1.2, "decode gate failed: {gate_1d:.2}x < 1.2x");
    assert!(
        gate_planned >= 1.0,
        "planner regression gate failed: planned/mono {gate_planned:.3}x < 1.0x"
    );
    assert!(
        measured_hidden >= gate_hidden_floor,
        "overlap gate failed: measured hidden {measured_hidden:.3} < floor {gate_hidden_floor:.3}"
    );
    assert!(gate_serving >= 1.1, "serving gate failed: {gate_serving:.2}x < 1.1x");
    assert!(gate_q256 >= 2.1, "int8 GEMM gate failed: {gate_q256:.2}x < 2.1x");
    assert!(gate_wire <= 0.55, "int8 wire gate failed: ratio {gate_wire:.3} > 0.55");
    assert!(
        gate_step <= 1.0,
        "int8 step-time gate failed: int8/f32 decode step ratio {gate_step:.3} > 1.0"
    );
    assert!(
        gate_paged >= 2.0,
        "paged KV capacity gate failed: {gate_paged:.2}x < 2.0x concurrent at equal budget"
    );
    assert!(
        gate_deadline <= 1.05,
        "deadline overhead gate failed: ratio {gate_deadline:.3} > 1.05"
    );
    assert!(
        gate_goodput >= 0.7,
        "overload goodput gate failed: {gate_goodput:.2}x < 0.7x of capacity"
    );
    assert!(
        gate_high_p99 <= 1.0,
        "overload SLO gate failed: high-class p99 TTFT {gate_high_p99:.2}s > 1.0s"
    );
    assert!(!over.shed.is_empty(), "a 2x overload trace must shed via typed errors");
    assert_eq!(gate_lost, 0, "router failover gate failed: {gate_lost} requests lost");
    assert!(rt_identical, "router failover gate failed: streams diverged from baseline");
    assert_eq!(
        rt_outcome.report.recovery.failovers, 1,
        "router failover gate failed: exactly one failover expected"
    );
}
