//! Serving study (Section 4.4) — the "batch-1 prefill server pipelined
//! into a batch-64 decoding server": throughput/latency as offered load
//! grows, and the effect of the decode batch cap.

use esti_bench::{banner, write_csv};
use esti_core::serving::{simulate, uniform_arrivals, ServingConfig};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    let model = ModelConfig::palm_540b_padded();
    let cfg = ServingConfig {
        prefill_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        decode_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        max_decode_batch: 64,
        input_len: 64,
        gen_len: 64,
        weight_dtype: DType::Int8,
    };
    let mut rows = Vec::new();

    banner("Serving: two-tier prefill/decode, PaLM 540B int8 (64+64 chips)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "req/s", "tokens/s", "mean lat s", "p50 s", "p99 s", "avg batch"
    );
    for rate in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let n = (rate * 30.0).ceil() as usize; // ~30 simulated seconds
        let report = simulate(&model, &cfg, &uniform_arrivals(n.max(8), rate));
        println!(
            "{rate:>10.1} {:>12.0} {:>12.2} {:>12.2} {:>12.2} {:>10.1}",
            report.throughput_tokens_per_sec(cfg.gen_len),
            report.mean_latency(),
            report.latency_percentile(50.0),
            report.latency_percentile(99.0),
            report.mean_decode_batch
        );
        rows.push(format!(
            "{rate},{:.1},{:.3},{:.3},{:.3},{:.2}",
            report.throughput_tokens_per_sec(cfg.gen_len),
            report.mean_latency(),
            report.latency_percentile(50.0),
            report.latency_percentile(99.0),
            report.mean_decode_batch
        ));
    }

    banner("Effect of the decode batch cap at a saturating burst of 256 requests");
    println!("{:>10} {:>12} {:>12}", "cap", "tokens/s", "p50 lat s");
    for cap in [1usize, 4, 16, 64, 256] {
        let mut c = cfg.clone();
        c.max_decode_batch = cap;
        let report = simulate(&model, &c, &vec![0.0; 256]);
        println!(
            "{cap:>10} {:>12.0} {:>12.2}",
            report.throughput_tokens_per_sec(c.gen_len),
            report.latency_percentile(50.0)
        );
        rows.push(format!(
            "cap_{cap},{:.1},{:.3},,,",
            report.throughput_tokens_per_sec(c.gen_len),
            report.latency_percentile(50.0)
        ));
    }

    write_csv("serving.csv", "rate_or_cap,tokens_per_s,mean_s,p50_s,p99_s,avg_batch", &rows);
    println!(
        "\nthe paper's observation made operational: raising the decode batch from 1 to 64 \
         multiplies throughput by an order of magnitude while per-request latency stays \
         within the interactive budget."
    );
}
