//! Ablation (Section 3.5) — Looped CollectiveEinsum: overlapping
//! collectives with the einsums that consume them. The paper credits these
//! loops (plus collective/matmul matching) with ~1.4x over the
//! compiler-partitioned baseline; here we reproduce the mechanism with the
//! event simulator and show where the speedup comes from and where it
//! saturates.

use esti_bench::{banner, write_csv};
use esti_hal::ChipSpec;
use esti_model::ModelConfig;
use esti_netsim::{looped_einsum_time, overlap_speedup, unfused_einsum_time, EinsumSpec};

fn main() {
    let chip = ChipSpec::tpu_v4();
    let mut rows = Vec::new();

    banner("Ablation: Looped CollectiveEinsum vs gather-then-compute");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>8}",
        "ring", "comm/compute", "unfused us", "fused us", "speedup"
    );
    // Sweep the comm:compute balance at ring sizes matching the paper's
    // torus groups (yz group of 16 chips on a 64-chip slice, etc.).
    for ring in [4usize, 8, 16] {
        for ratio in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
            // Fix compute at 1 ms total, set communication by ratio.
            let flops = 1e-3 * chip.peak_flops / ring as f64;
            let bytes = ratio * 1e-3 * chip.axis_bandwidth(1) / (ring as f64 - 1.0);
            let spec = EinsumSpec::new(ring, bytes, flops);
            let unfused = unfused_einsum_time(&chip, &spec);
            let fused = looped_einsum_time(&chip, &spec);
            let speedup = overlap_speedup(&chip, &spec);
            println!(
                "{ring:>6} {ratio:>14.2} {:>12.1} {:>12.1} {:>8.2}",
                unfused * 1e6,
                fused * 1e6,
                speedup
            );
            rows.push(format!("{ring},{ratio},{:.3},{:.3},{speedup:.4}", unfused * 1e6, fused * 1e6));
        }
    }

    banner("At PaLM 540B decode shapes (64 chips, batch 512, WS 2D)");
    // The x-axis pair of the 2D layout: a BL x E/X activation gathered over
    // the yz group of 16 chips, consumed by the in-projection matmul.
    let model = ModelConfig::palm_540b_padded();
    let bl = 512.0;
    let shard_bytes = bl * (model.d_model as f64 / 4.0) / 16.0 * 2.0;
    let shard_flops = 2.0 * bl * (model.d_model as f64 / 4.0) / 16.0 * (model.d_ff as f64 / 16.0);
    let spec = EinsumSpec::new(16, shard_bytes, shard_flops);
    let unfused = unfused_einsum_time(&chip, &spec);
    let fused = looped_einsum_time(&chip, &spec);
    println!(
        "per-layer gather+einsum: unfused {:.0} us, fused {:.0} us -> {:.2}x \
         (paper: ~1.4x end to end)",
        unfused * 1e6,
        fused * 1e6,
        unfused / fused
    );
    rows.push(format!("palm_decode,na,{:.3},{:.3},{:.4}", unfused * 1e6, fused * 1e6, unfused / fused));

    write_csv("ablation_overlap.csv", "ring,comm_compute_ratio,unfused_us,fused_us,speedup", &rows);
    println!(
        "\ninterpretation: the speedup peaks when communication and compute balance \
         (the regime the 2D weight-stationary layout engineers at its optimal mesh) and \
         saturates toward 2x with ring size; mixed with non-overlappable work this \
         yields the paper's overall ~1.4x."
    );
}
