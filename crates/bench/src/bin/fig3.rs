//! Figure 3 — per-layer communication volume vs batch size (in tokens) for
//! the feedforward layer, comparing 2D weight-stationary against the
//! X/XY/XYZ weight-gathered layouts at X=Y=Z=4, d_model=16384, d_ff=65536.
//!
//! The reproduced claim: the communication-minimal layout switches from
//! WS 2D to progressively wider weight-gathered layouts as batch grows.

use esti_bench::{banner, write_csv};
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{BlockKind, ModelConfig};

fn fig3_model() -> ModelConfig {
    // A feedforward-only setting: params_per_layer ≈ 2·E·F.
    let mut m = ModelConfig::mt_nlg_530b();
    m.name = "ffn-only".to_owned();
    m.d_model = 16384;
    m.d_ff = 65536;
    m.n_heads = 1;
    m.d_head = 1;
    m.block = BlockKind::Parallel;
    m
}

fn main() {
    banner("Figure 3: communication volume vs batch size (elements per layer)");
    let model = fig3_model();
    let mesh = MeshFactors::new(4, 4, 4);
    let layouts: Vec<(String, Layout)> = [
        FfnLayout::WeightStationary2D,
        FfnLayout::WeightGathered(GatherExtent::X),
        FfnLayout::WeightGathered(GatherExtent::Xy),
        FfnLayout::WeightGathered(GatherExtent::Xyz),
    ]
    .into_iter()
    .map(|ffn| {
        (ffn.name().to_owned(), Layout { ffn, attn: AttnSharding::Head, mesh })
    })
    .collect();

    print!("{:>12}", "tokens");
    for (name, _) in &layouts {
        print!(" {name:>12}");
    }
    println!(" {:>10}", "best");

    let mut rows = Vec::new();
    let mut batch_tokens = 1024.0f64;
    let mut last_best = usize::MAX;
    let mut crossovers = Vec::new();
    while batch_tokens <= 2e7 {
        let volumes: Vec<f64> =
            layouts.iter().map(|(_, l)| l.layer_comm_elements(&model, batch_tokens)).collect();
        let best = volumes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        print!("{batch_tokens:>12.0}");
        for v in &volumes {
            print!(" {v:>12.3e}");
        }
        println!(" {:>10}", layouts[best].0);
        rows.push(format!(
            "{batch_tokens},{}",
            volumes.iter().map(|v| format!("{v:.1}")).collect::<Vec<_>>().join(",")
        ));
        if best != last_best && last_best != usize::MAX {
            crossovers.push((batch_tokens, layouts[best].0.clone()));
        }
        last_best = best;
        batch_tokens *= 2.0;
    }

    println!("\ncrossovers (paper: WS2D -> WG X -> WG XY -> WG XYZ as batch grows):");
    for (tokens, name) in crossovers {
        println!("  {name} becomes optimal near {tokens:.0} tokens");
    }
    write_csv("fig3.csv", "batch_tokens,ws2d,wg_x,wg_xy,wg_xyz", &rows);
}
