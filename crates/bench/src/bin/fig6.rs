//! Figure 6 — decode latency per token for 1D vs 2D weight-stationary
//! layouts on PaLM 540B at batch 512, as chip count grows.
//!
//! Reproduced claims: both layouts become communication-limited, but 2D
//! keeps improving with chip count (its communication scales as 1/√n)
//! while 1D saturates (constant communication).

use esti_bench::{banner, write_csv};
use esti_core::layout::{AttnSharding, FfnLayout, Layout};
use esti_core::perf::{estimate, PhaseSpec};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Figure 6: decode latency/token, 1D vs 2D weight-stationary (batch 512)");
    let model = ModelConfig::palm_540b_padded();
    let spec = PhaseSpec::decode(512, 2048);
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "chips", "1D ms/token", "2D ms/token", "1D comm ms", "2D comm ms"
    );
    let mut rows = Vec::new();
    for n in [16usize, 32, 64, 128, 256] {
        let machine = Machine::tpu_v4_slice(n).expect("catalog slice");
        let l1 = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws1d_mesh(n),
        };
        let l2 = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
        };
        // int8 weights so that the 540B model fits down to 16 chips.
        let e1 = estimate(&machine, &model, &l1, &spec, DType::Int8);
        let e2 = estimate(&machine, &model, &l2, &spec, DType::Int8);
        println!(
            "{n:>6} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
            e1.step_time * 1e3,
            e2.step_time * 1e3,
            e1.comm_time * 1e3,
            e2.comm_time * 1e3
        );
        rows.push(format!(
            "{n},{:.4},{:.4},{:.4},{:.4}",
            e1.step_time * 1e3,
            e2.step_time * 1e3,
            e1.comm_time * 1e3,
            e2.comm_time * 1e3
        ));
    }
    write_csv("fig6.csv", "chips,ws1d_ms,ws2d_ms,ws1d_comm_ms,ws2d_comm_ms", &rows);
    println!("\nexpected shape: 2D strictly faster from 64 chips on; 1D flattens out.");
}
