//! Figure C.1 — MFU vs latency Pareto frontiers (the companion of
//! Figure 1, with MFU as the efficiency axis).
//!
//! Reproduced claims: prefill MFU far exceeds decode MFU; prefill curves
//! "jump" where the planner switches from WS 2D to weight-gathered; larger
//! models usually achieve higher MFU, except at latency-tolerant decode
//! where 62B's smaller model parallelism wins.

use esti_bench::{banner, write_csv};
use esti_core::pareto::{decode_sweep, pareto_frontier, prefill_sweep};
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    let models = [ModelConfig::palm_8b(), ModelConfig::palm_62b(), ModelConfig::palm_540b_padded()];
    let mut rows = Vec::new();

    banner("Figure C.1 (left): decode MFU vs latency per token (bf16)");
    println!(
        "{:<22} {:>6} {:>6} {:>22} {:>12} {:>6}",
        "model", "chips", "batch", "layout", "ms/token", "MFU%"
    );
    for model in &models {
        let sweep = decode_sweep(model, DType::Bf16, 2048);
        for p in pareto_frontier(&sweep, |p| -p.mfu) {
            println!(
                "{:<22} {:>6} {:>6} {:>22} {:>12.2} {:>6.1}",
                p.model,
                p.n_chips,
                p.batch,
                p.layout.describe(),
                p.latency * 1e3,
                p.mfu * 100.0
            );
            rows.push(format!(
                "decode,{},{},{},{:.4},{:.4}",
                p.model, p.n_chips, p.batch, p.latency * 1e3, p.mfu
            ));
        }
        println!();
    }

    banner("Figure C.1 (right): prefill MFU vs latency, 2048 tokens (bf16)");
    for model in &models {
        let sweep = prefill_sweep(model, DType::Bf16, 2048);
        for p in pareto_frontier(&sweep, |p| -p.mfu) {
            println!(
                "{:<22} {:>6} {:>6} {:>22} {:>12.3} {:>6.1}",
                p.model,
                p.n_chips,
                p.batch,
                p.layout.describe(),
                p.latency,
                p.mfu * 100.0
            );
            rows.push(format!(
                "prefill,{},{},{},{:.4},{:.4}",
                p.model, p.n_chips, p.batch, p.latency, p.mfu
            ));
        }
        println!();
    }
    write_csv("fig_c1.csv", "phase,model,chips,batch,latency,mfu", &rows);
}
