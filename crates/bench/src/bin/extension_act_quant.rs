//! Extension experiment — int8 *activation* quantization, the future work
//! the paper calls out twice:
//!
//! * Section 3.6: "we are hopeful that it could reduce compute time in
//!   large-batch configurations and reduce communication volume of
//!   activations in weight-stationary layouts";
//! * Section 4.4: "quantization of activations to int8 could enable a
//!   further cost improvement".
//!
//! We project the communication side of that claim with the analytical
//! model: halving activation bytes halves the bandwidth term of every
//! weight-stationary collective.

use esti_bench::{banner, write_csv};
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use esti_core::perf::{estimate_with, PerfParams, PhaseSpec};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Extension: projected int8 activation quantization (Sections 3.6, 4.4)");
    let model = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let mesh = Layout::ws2d_mesh(64, model.d_model, model.d_ff);
    let bf16 = PerfParams::default();
    let i8act = PerfParams { act_dtype: DType::Int8, ..PerfParams::default() };
    let mut rows = Vec::new();

    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "configuration", "bf16 acts", "int8 acts", "speedup"
    );
    let cases: Vec<(&str, Layout, PhaseSpec, DType)> = vec![
        (
            "decode B=64, WS2D, int8 w",
            Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Batch, mesh },
            PhaseSpec::decode(64, 2048),
            DType::Int8,
        ),
        (
            "decode B=512, WS2D, bf16 w",
            Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Batch, mesh },
            PhaseSpec::decode(512, 2048),
            DType::Bf16,
        ),
        (
            "prefill B=1, WS2D, int8 w",
            Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Head, mesh },
            PhaseSpec::prefill(1, 2048),
            DType::Int8,
        ),
        (
            "prefill B=512, WG XYZ, bf16 w",
            Layout { ffn: FfnLayout::WeightGathered(GatherExtent::Xyz), attn: AttnSharding::Batch, mesh },
            PhaseSpec::prefill(512, 2048),
            DType::Bf16,
        ),
    ];
    for (name, layout, spec, wdtype) in cases {
        let a = estimate_with(&machine, &model, &layout, &spec, wdtype, &bf16);
        let b = estimate_with(&machine, &model, &layout, &spec, wdtype, &i8act);
        println!(
            "{name:<34} {:>12.1} {:>12.1} {:>7.2}x",
            a.step_time * 1e3,
            b.step_time * 1e3,
            a.step_time / b.step_time
        );
        rows.push(format!(
            "{name},{:.3},{:.3},{:.4}",
            a.step_time * 1e3,
            b.step_time * 1e3,
            a.step_time / b.step_time
        ));
    }
    write_csv("extension_act_quant.csv", "case,bf16_ms,int8_ms,speedup", &rows);
    println!(
        "\nas the paper anticipates, the win concentrates in weight-stationary decode \
         (activation collectives dominate); weight-gathered prefill moves weights, not \
         activations, so it barely changes."
    );
}
