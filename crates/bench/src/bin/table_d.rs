//! Tables D.2–D.4 (and the data behind Figure 9) — the FasterTransformer
//! comparison: for each benchmark (20/8, 60/20, 128/8 input/output tokens)
//! and each batch size, our analytical estimates for PaLM 540B and
//! MT-NLG 530B on 64 TPU v4 chips with 2D partitioning, next to the
//! published FasterTransformer results on A100s.
//!
//! MFU normalizes away the hardware difference, exactly as the paper
//! argues in Section 5.

use esti_bench::{banner, e2e_point, write_csv};
use esti_core::ft;
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let palm = ModelConfig::palm_540b_padded();
    let mtnlg = ModelConfig::mt_nlg_530b();
    let batches = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024];
    let mut rows = Vec::new();

    for bench in ft::benchmarks() {
        banner(&format!(
            "Table D ({} input, {} output tokens): ours vs FasterTransformer",
            bench.input_tokens, bench.output_tokens
        ));
        println!(
            "{:>6} | {:>9} {:>5} | {:>9} {:>5} {:>9} {:>5} | {:>9} {:>5} | {:>9} {:>5}",
            "batch", "FT-TP16", "MFU%", "PaLM pre", "MFU%", "PaLM gen", "MFU%", "PaLM tot",
            "MFU%", "MTNLG tot", "MFU%"
        );
        for &batch in &batches {
            let ft_cell = bench.configs[0]
                .points
                .iter()
                .find(|p| p.batch == batch)
                .and_then(|p| p.time_ms.zip(p.mfu_pct));
            let (p, g, total, mfu) =
                e2e_point(&palm, &machine, batch, bench.input_tokens, bench.output_tokens, DType::Bf16);
            let (_, _, m_total, m_mfu) =
                e2e_point(&mtnlg, &machine, batch, bench.input_tokens, bench.output_tokens, DType::Bf16);
            let (ft_t, ft_m) = ft_cell.map_or(("-".into(), "-".into()), |(t, m)| {
                (format!("{t:.0}"), format!("{m:.0}"))
            });
            println!(
                "{batch:>6} | {ft_t:>9} {ft_m:>5} | {:>9.0} {:>5.0} {:>9.0} {:>5.0} | {:>9.0} {:>5.0} | {:>9.0} {:>5.0}",
                p.step_time * 1e3,
                p.mfu * 100.0,
                g.step_time * 1e3,
                g.mfu * 100.0,
                total * 1e3,
                mfu * 100.0,
                m_total * 1e3,
                m_mfu * 100.0
            );
            rows.push(format!(
                "{},{},{batch},{:.1},{:.3},{:.1},{:.3},{:.1},{:.3},{:.1},{:.3}",
                bench.input_tokens,
                bench.output_tokens,
                p.step_time * 1e3,
                p.mfu,
                g.step_time * 1e3,
                g.mfu,
                total * 1e3,
                mfu,
                m_total * 1e3,
                m_mfu
            ));
        }
        println!();
    }

    write_csv(
        "table_d.csv",
        "input,output,batch,palm_prefill_ms,palm_prefill_mfu,palm_gen_ms,palm_gen_mfu,palm_total_ms,palm_total_mfu,mtnlg_total_ms,mtnlg_total_mfu",
        &rows,
    );

    // Section 5 claims to verify by eye:
    banner("Section 5 claims");
    let (_, _, t64, mfu64) = e2e_point(&palm, &machine, 64, 60, 20, DType::Bf16);
    let (_, _, mt64, m_mfu64) = e2e_point(&mtnlg, &machine, 64, 60, 20, DType::Bf16);
    println!(
        "60/20 @ batch 64: PaLM {:.0} ms at {:.0}% MFU vs MT-NLG {:.0} ms at {:.0}% MFU \
         (paper: PaLM beats its own MT-NLG implementation by up to ~10% MFU, thanks to \
         parallel attn/ffn layers)",
        t64 * 1e3,
        mfu64 * 100.0,
        mt64 * 1e3,
        m_mfu64 * 100.0
    );
    let ft_best_mfu = 46.0;
    println!(
        "FT's best MFU across all configs: {ft_best_mfu:.0}% (TP16); its TP32 scaling tops at \
         33% — our 64-way 2D partitioning sustains large-batch MFUs in the 40s."
    );
}
