//! Baseline study — tensor vs pipeline parallelism for inference
//! (Section 5's implicit comparison): FasterTransformer serves MT-NLG 530B
//! as TP16/TP32/PP3-TP8; the paper scales pure tensor parallelism to 64
//! chips instead. We model both on the same simulated hardware.

use esti_bench::{banner, write_csv};
use esti_core::layout::{AttnSharding, FfnLayout, Layout};
use esti_core::perf::{estimate, PhaseSpec};
use esti_core::pipeline::{estimate_pipelined, PipelineSetup};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::ModelConfig;

fn tp_layout(model: &ModelConfig, n: usize) -> Layout {
    Layout {
        ffn: FfnLayout::WeightStationary2D,
        attn: AttnSharding::Head,
        mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
    }
}

fn main() {
    banner("Baseline: pipeline vs tensor parallelism, MT-NLG 530B (20 in / 8 out)");
    let model = ModelConfig::mt_nlg_530b();
    let mut rows = Vec::new();

    println!(
        "{:>6} | {:<14} {:>10} {:>6} | {:<14} {:>10} {:>6}",
        "batch", "PP3 x TP16", "total ms", "MFU%", "TP64", "total ms", "MFU%"
    );
    for batch in [4usize, 16, 64, 256] {
        // --- PP3 x TP16 (48 chips): microbatch prefill, serial decode ---
        let stage = Machine::tpu_v4_slice(16).expect("16-chip stage");
        let setup = PipelineSetup::new(3, batch.min(8));
        let layout16 = tp_layout(&model, 16);
        let pp_pre = estimate_pipelined(&stage, &model, &layout16, &setup, &PhaseSpec::prefill(batch, 20), DType::Bf16);
        let pp_step = estimate_pipelined(&stage, &model, &layout16, &setup, &PhaseSpec::decode(batch, 24), DType::Bf16);
        let pp_total = pp_pre.step_time + 8.0 * pp_step.step_time;
        let pp_mfu = model.flops_per_token() * (batch * 28) as f64
            / (pp_total * 48.0 * stage.chip.peak_flops);

        // --- pure TP on 64 chips ---
        let m64 = Machine::tpu_v4_slice(64).expect("64-chip slice");
        let layout64 = tp_layout(&model, 64);
        let tp_pre = estimate(&m64, &model, &layout64, &PhaseSpec::prefill(batch, 20), DType::Bf16);
        let tp_step = estimate(&m64, &model, &layout64, &PhaseSpec::decode(batch, 24), DType::Bf16);
        let tp_total = tp_pre.step_time + 8.0 * tp_step.step_time;
        let tp_mfu = model.flops_per_token() * (batch * 28) as f64
            / (tp_total * m64.peak_flops());

        println!(
            "{batch:>6} | {:<14} {:>10.0} {:>6.1} | {:<14} {:>10.0} {:>6.1}",
            "48 chips",
            pp_total * 1e3,
            pp_mfu * 100.0,
            "64 chips",
            tp_total * 1e3,
            tp_mfu * 100.0
        );
        rows.push(format!(
            "{batch},{:.1},{:.4},{:.1},{:.4}",
            pp_total * 1e3,
            pp_mfu,
            tp_total * 1e3,
            tp_mfu
        ));
    }
    write_csv("baseline_pp.csv", "batch,pp3tp16_ms,pp3tp16_mfu,tp64_ms,tp64_mfu", &rows);
    println!(
        "\nexpected shape (cf. Tables D.2-D.4): pipelining pays the full stage-traversal \
         latency per generated token, so pure tensor parallelism dominates at every batch \
         for latency, and the PP bubble depresses small-batch MFU."
    );
}
