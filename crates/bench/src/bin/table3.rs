//! Table 3 — example configurations for PaLM 62B: the same scenarios as
//! Table 2 but at smaller chip counts (16 / 32 / 8 chips), showing that the
//! same layouts and similar batch sizes carry over across model sizes.

use esti_bench::{banner, run_scenario_table, write_csv, ScenarioRow};
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent};
use esti_hal::DType;
use esti_model::ModelConfig;

fn main() {
    banner("Table 3: example configurations, PaLM 62B (paper values in parens)");
    let model = ModelConfig::palm_62b();
    let rows = [
        ScenarioRow {
            name: "low-latency prefill",
            prefill: true,
            chips: 16,
            batch: 1,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            dtype: DType::Int8,
            paper_mfu: 36.0,
            paper_latency: 0.16,
        },
        ScenarioRow {
            name: "low-latency decode",
            prefill: false,
            chips: 16,
            batch: 32,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            dtype: DType::Int8,
            paper_mfu: 8.0,
            paper_latency: 0.73,
        },
        ScenarioRow {
            name: "high-throughput prefill",
            prefill: true,
            chips: 32,
            batch: 512,
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            dtype: DType::Bf16,
            paper_mfu: 73.0,
            paper_latency: 20.2,
        },
        ScenarioRow {
            name: "high-throughput decode",
            prefill: false,
            chips: 8,
            batch: 512,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            dtype: DType::Bf16,
            paper_mfu: 37.0,
            paper_latency: 5.1,
        },
    ];
    let csv = run_scenario_table(&model, &rows);
    write_csv(
        "table3.csv",
        "scenario,chips,batch,ffn,attn,dtype,mfu_pct,paper_mfu_pct,latency_s,paper_latency_s",
        &csv,
    );
    println!(
        "\npaper's cross-size observation: the 62B model uses fewer chips but the same \
         layouts and similar batch sizes as 540B, with similar high-throughput MFUs."
    );
}
