//! Microbenchmarks of the shared-memory collectives that the partitioned
//! runtime executes on: all-gather / reduce-scatter / all-reduce /
//! all-to-all over thread groups of 2–8 simulated chips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use esti_collectives::CommGroup;
use esti_tensor::Tensor;

/// Runs `f(rank, group)` on one thread per member.
fn run_group<T: Send>(size: usize, f: impl Fn(usize, &CommGroup) -> T + Sync) -> Vec<T> {
    let members = CommGroup::create(size);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = members
            .into_iter()
            .enumerate()
            .map(|(r, m)| s.spawn(move || f(r, &m)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("member")).collect()
    })
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_64k_f32");
    for &n in &[2usize, 4, 8] {
        group.throughput(Throughput::Bytes((64 * 1024 * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                run_group(n, |r, g| {
                    let t = Tensor::full(vec![64 * 1024], r as f32);
                    g.all_reduce(&t)
                })
            });
        });
    }
    group.finish();
}

fn bench_all_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_gather_16k_shard");
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                run_group(n, |r, g| {
                    let shard = Tensor::full(vec![16 * 1024], r as f32);
                    g.all_gather(&shard, 0)
                })
            });
        });
    }
    group.finish();
}

fn bench_reduce_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_scatter_64k");
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                run_group(n, |r, g| {
                    let t = Tensor::full(vec![64 * 1024], r as f32);
                    g.reduce_scatter(&t, 0)
                })
            });
        });
    }
    group.finish();
}

fn bench_all_to_all(c: &mut Criterion) {
    // The batch<->head reshard of Figure 5b.
    let mut group = c.benchmark_group("all_to_all_batch_head");
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                run_group(n, |r, g| {
                    let q = Tensor::full(vec![8 * n, 1, 256], r as f32);
                    g.all_to_all(&q, 0, 2)
                })
            });
        });
    }
    group.finish();
}

fn bench_chunked(c: &mut Criterion) {
    // The chunked ring forms at the granularities the overlapped executor
    // uses; same payload, `chunks` sub-transfers.
    let mut group = c.benchmark_group("all_reduce_64k_chunked_n4");
    for &chunks in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Bytes((64 * 1024 * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(chunks), &chunks, |bench, &chunks| {
            bench.iter(|| {
                run_group(4, |r, g| {
                    let t = Tensor::full(vec![64 * 1024], r as f32);
                    g.all_reduce_chunked(&t, 0, chunks)
                })
            });
        });
    }
    group.finish();
    let mut group = c.benchmark_group("all_gather_16k_chunked_n4");
    for &chunks in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(chunks), &chunks, |bench, &chunks| {
            bench.iter(|| {
                run_group(4, |r, g| {
                    let shard = Tensor::full(vec![16 * 1024], r as f32);
                    g.all_gather_chunked(&shard, 0, chunks)
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_reduce,
    bench_all_gather,
    bench_reduce_scatter,
    bench_all_to_all,
    bench_chunked
);
criterion_main!(benches);
