//! Microbenchmarks of the partitioned runtime: prefill and decode steps of
//! the tiny model under each dataflow, vs the single-chip reference — the
//! per-step overhead of the thread-per-chip simulation.

use criterion::{criterion_group, criterion_main, Criterion};

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{KvCache, ModelConfig, ReferenceModel};
use esti_runtime::{ExecMode, PartitionedEngine, WeightFormat};

fn prompts() -> Vec<Vec<usize>> {
    (0..4).map(|b| vec![b + 1, b + 2, b + 3, b + 4]).collect()
}

fn bench_reference(c: &mut Criterion) {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
    c.bench_function("reference_prefill_b4_l4", |bench| {
        bench.iter(|| {
            let mut cache = KvCache::new(model.config().n_layers);
            model.prefill(&prompts(), &mut cache)
        });
    });
    c.bench_function("reference_decode_step", |bench| {
        let mut cache = KvCache::new(model.config().n_layers);
        let _ = model.prefill(&prompts(), &mut cache);
        bench.iter_batched(
            || cache.clone(),
            |mut cache| model.decode_step(&[1, 2, 3, 4], &mut cache),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_partitioned(c: &mut Criterion) {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
    let layouts = [
        ("ws1d_4chips", Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(1, 4, 1),
        }),
        ("ws2d_2x2", Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(2, 2, 1),
        }),
        ("wg_xyz_4chips", Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(4, 1, 1),
        }),
    ];
    for (name, layout) in layouts {
        c.bench_function(&format!("partitioned_prefill_{name}"), |bench| {
            bench.iter_batched(
                || PartitionedEngine::new(&model, layout, WeightFormat::Exact),
                |mut engine| engine.prefill(&prompts()),
                criterion::BatchSize::SmallInput,
            );
        });
    }
}

fn bench_exec_modes(c: &mut Criterion) {
    // Monolithic vs overlapped executor on the 1D layout; the wall-clock
    // acceptance numbers live in `bench-runtime` (BENCH_runtime.json),
    // this group keeps the mode API covered by `cargo bench`.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 4, 1),
    };
    for (name, exec) in [
        ("monolithic", ExecMode::Monolithic),
        ("overlapped_c4", ExecMode::Overlapped { chunks: 4 }),
    ] {
        c.bench_function(&format!("decode_step_ws1d_{name}"), |bench| {
            bench.iter_batched(
                || {
                    let mut engine =
                        PartitionedEngine::new_with_exec(&model, layout, WeightFormat::Exact, exec);
                    let _ = engine.prefill(&prompts());
                    engine
                },
                |mut engine| engine.decode_step(&[1, 2, 3, 4]),
                criterion::BatchSize::SmallInput,
            );
        });
    }
}

criterion_group!(benches, bench_reference, bench_partitioned, bench_exec_modes);
criterion_main!(benches);
