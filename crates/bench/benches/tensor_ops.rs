//! Microbenchmarks of the numeric substrate: matmul, the log-base-2
//! softmax/swish fast paths (Section 3.5), int8 weight matmul
//! (Section 3.6), and the partial-selection top-k sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use esti_tensor::sample::top_k_indices;
use esti_tensor::{ops, QuantizedMatrix, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(&mut rng, vec![n, n], 1.0);
        let b = Tensor::randn(&mut rng, vec![n, n], 1.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(&a, &b));
        });
    }
    group.finish();
}

fn bench_quantized_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_matmul");
    let mut rng = StdRng::seed_from_u64(1);
    let n = 256usize;
    let w = Tensor::randn(&mut rng, vec![n, n], 0.05);
    let x = Tensor::randn(&mut rng, vec![16, n], 1.0);
    let q = QuantizedMatrix::quantize(&w);
    group.bench_function("int8_16x256x256", |bench| bench.iter(|| q.matmul(&x)));
    group.bench_function("f32_16x256x256", |bench| bench.iter(|| ops::matmul(&x, &w)));
    group.bench_function("quantize_256x256", |bench| {
        bench.iter(|| QuantizedMatrix::quantize(&w));
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    let mut rng = StdRng::seed_from_u64(2);
    let t = Tensor::randn(&mut rng, vec![64, 2048], 2.0);
    group.throughput(Throughput::Elements(t.numel() as u64));
    group.bench_function("exp", |bench| bench.iter(|| ops::softmax(&t)));
    group.bench_function("exp2 (Section 3.5)", |bench| bench.iter(|| ops::softmax_base2(&t)));
    group.finish();
}

fn bench_swish(c: &mut Criterion) {
    let mut group = c.benchmark_group("swish");
    let mut rng = StdRng::seed_from_u64(3);
    let t = Tensor::randn(&mut rng, vec![1 << 16], 2.0);
    group.throughput(Throughput::Elements(t.numel() as u64));
    group.bench_function("exp", |bench| bench.iter(|| ops::swish(&t)));
    group.bench_function("exp2 (Section 3.5)", |bench| bench.iter(|| ops::swish_base2(&t)));
    group.finish();
}

fn bench_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_k_vocab_256k");
    let mut rng = StdRng::seed_from_u64(4);
    let logits = Tensor::randn(&mut rng, vec![256_000], 1.0);
    for &k in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| top_k_indices(logits.data(), k));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_quantized_matmul,
    bench_softmax,
    bench_swish,
    bench_top_k
);
criterion_main!(benches);
