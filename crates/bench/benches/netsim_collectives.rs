//! Microbenchmarks of the discrete-event network simulator itself: how
//! fast can it schedule the transfer DAGs of torus collectives (relevant
//! because the analytic model's tests sweep it over many shapes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use esti_hal::ChipSpec;
use esti_netsim::{simulate_collective, CollectiveKind};
use esti_topology::{Axis, AxisSet, TorusShape};

fn bench_single_axis(c: &mut Criterion) {
    let chip = ChipSpec::tpu_v4();
    let mut group = c.benchmark_group("netsim_ring_all_gather");
    for &k in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            let torus = TorusShape::new(k, 1, 1);
            bench.iter(|| {
                simulate_collective(
                    &chip,
                    torus,
                    CollectiveKind::AllGather,
                    AxisSet::single(Axis::X),
                    1e6,
                )
            });
        });
    }
    group.finish();
}

fn bench_full_cube(c: &mut Criterion) {
    let chip = ChipSpec::tpu_v4();
    let torus = TorusShape::new(4, 4, 4);
    let mut group = c.benchmark_group("netsim_4x4x4");
    for (name, kind) in [
        ("all_gather_xyz", CollectiveKind::AllGather),
        ("all_reduce_xyz", CollectiveKind::AllReduce),
        ("all_to_all_xyz", CollectiveKind::AllToAll),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| simulate_collective(&chip, torus, kind, AxisSet::all(), 1e6));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_axis, bench_full_cube);
criterion_main!(benches);
