//! Shared-memory collective operations for the functional runtime.
//!
//! `esti-runtime` proves the paper's partitioning algebra by actually
//! executing sharded Transformer forward passes: one OS thread per simulated
//! chip, communicating *only* through the collectives in this crate —
//! all-gather, reduce-scatter, all-reduce and all-to-all, the four
//! primitives of Section 3.1 (Figure A.1).
//!
//! Chips are threads in one process, so the implementation exchanges
//! tensors through per-group mailboxes guarded by a reusable barrier. That
//! is obviously not how a TPU pod moves bytes — timing comes from
//! `esti-netsim` and the analytic model — but the *semantics* (which chip
//! ends up with which shard) are exactly those of the paper's collectives,
//! which is what the correctness tests need.
//!
//! Every call is also recorded in a [`TrafficStats`] ledger using the
//! paper's byte-accounting conventions (per-chip output for an all-gather,
//! per-chip input for a reduce-scatter), so integration tests can assert
//! that a partitioned layer moved exactly the communication volume the
//! analytical model charges it for.
//!
//! # Examples
//!
//! ```
//! use esti_collectives::CommGroup;
//! use esti_tensor::Tensor;
//!
//! let members = CommGroup::create(2);
//! let handles: Vec<_> = members
//!     .into_iter()
//!     .map(|m| {
//!         std::thread::spawn(move || {
//!             let shard = Tensor::full(vec![1, 2], m.rank() as f32);
//!             m.all_gather(&shard, 0)
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     let full = h.join().unwrap();
//!     assert_eq!(full.shape(), &[2, 2]);
//!     assert_eq!(full.data(), &[0.0, 0.0, 1.0, 1.0]);
//! }
//! ```

// Fault tolerance discipline: runtime failures (peer death, stalls,
// poisoned locks) must travel as typed errors, never as `unwrap`/`expect`
// panics. The vetted remainder — protocol invariants whose violation is a
// caller bug, not a runtime fault — carries targeted `allow`s in `group`.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod fault;
pub mod group;
pub mod protocol;
pub mod stats;
pub mod sync;

pub use fault::{CollectiveError, FaultKind, FaultPlan, FaultState, InjectedCrash, Trigger};
pub use group::{ChunkedExchange, ChunkedQuantExchange, CommGroup};
pub use protocol::{ProtocolEdge, ProtocolModel};
pub use stats::{quant_wire_bytes, CollectiveOp, CommTimes, TrafficStats, ACT_BYTES};
pub use sync::BarrierFate;
