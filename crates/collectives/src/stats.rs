//! Communication-volume accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The four collective primitives (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// all-gather.
    AllGather,
    /// reduce-scatter.
    ReduceScatter,
    /// all-reduce.
    AllReduce,
    /// all-to-all.
    AllToAll,
}

impl CollectiveOp {
    /// All variants, for iteration in reports.
    pub const ALL: [CollectiveOp; 4] = [
        CollectiveOp::AllGather,
        CollectiveOp::ReduceScatter,
        CollectiveOp::AllReduce,
        CollectiveOp::AllToAll,
    ];

    pub(crate) const fn slot(self) -> usize {
        match self {
            CollectiveOp::AllGather => 0,
            CollectiveOp::ReduceScatter => 1,
            CollectiveOp::AllReduce => 2,
            CollectiveOp::AllToAll => 3,
        }
    }
}

/// Logical activation width used for traffic accounting (bf16, Section 2):
/// the per-element byte cost the ledger charges dense collectives.
pub const ACT_BYTES: u64 = 2;

/// Closed-form per-chip wire volume of a quantized all-gather (Section 3.6).
///
/// A gathered int8 `rows × cols` shard costs 1 byte per value plus one f32
/// scale per column, received from each of `group_size` ranks (own shard
/// included, per the ledger's output-bytes convention):
/// `group_size × (rows·cols + 4·cols)`.
///
/// This is the single source of truth shared by the runtime's quantized
/// collectives (which charge the ledger) and `esti-verify`'s quant-dataflow
/// pass (which statically checks schedules against the same accounting).
///
/// # Examples
///
/// ```
/// use esti_collectives::quant_wire_bytes;
///
/// assert_eq!(quant_wire_bytes(4, 128, 64), 4 * (128 * 64 + 64 * 4));
/// ```
#[must_use]
pub const fn quant_wire_bytes(group_size: usize, rows: usize, cols: usize) -> usize {
    group_size * (rows * cols + cols * 4)
}

/// Thread-safe ledger of collective calls and their per-chip byte volumes.
///
/// Byte conventions follow Appendix A.1: an all-gather is charged its
/// per-chip *output* bytes, a reduce-scatter its per-chip *input* bytes, an
/// all-reduce the sum of both phases, and an all-to-all its per-chip payload
/// bytes. Volumes are recorded once per *call* (they are identical on every
/// rank), so a test can compare the ledger directly against the analytical
/// model's per-layer communication volume.
///
/// # Examples
///
/// ```
/// use esti_collectives::{CollectiveOp, TrafficStats};
///
/// let stats = TrafficStats::new();
/// stats.record(CollectiveOp::AllGather, 1024);
/// assert_eq!(stats.bytes(CollectiveOp::AllGather), 1024);
/// assert_eq!(stats.calls(CollectiveOp::AllGather), 1);
/// assert_eq!(stats.total_bytes(), 1024);
/// ```
#[derive(Debug, Default)]
pub struct TrafficStats {
    bytes: [AtomicU64; 4],
    calls: [AtomicU64; 4],
    nanos: [AtomicU64; 4],
    chunk_posts: [AtomicU64; 4],
}

impl TrafficStats {
    /// Creates an empty ledger behind an [`Arc`] so chips can share it.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(TrafficStats::default())
    }

    /// Records one collective call of `bytes` per-chip volume.
    pub fn record(&self, op: CollectiveOp, bytes: u64) {
        self.bytes[op.slot()].fetch_add(bytes, Ordering::Relaxed);
        self.calls[op.slot()].fetch_add(1, Ordering::Relaxed);
    }

    /// Total per-chip bytes recorded for `op`.
    #[must_use]
    pub fn bytes(&self, op: CollectiveOp) -> u64 {
        self.bytes[op.slot()].load(Ordering::Relaxed)
    }

    /// Number of calls recorded for `op`.
    #[must_use]
    pub fn calls(&self, op: CollectiveOp) -> u64 {
        self.calls[op.slot()].load(Ordering::Relaxed)
    }

    /// Total per-chip bytes across all collective kinds.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        CollectiveOp::ALL.iter().map(|&op| self.bytes(op)).sum()
    }

    /// Adds `nanos` of wall-clock time blocked in a collective of kind `op`.
    /// Like byte volumes, time is recorded once per call (on rank 0), so the
    /// ledger reports one representative chip's blocking time — the quantity
    /// the overlapped executor is trying to hide.
    pub fn record_nanos(&self, op: CollectiveOp, nanos: u64) {
        self.nanos[op.slot()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total rank-0 wall-clock nanoseconds blocked in collectives of `op`.
    #[must_use]
    pub fn nanos(&self, op: CollectiveOp) -> u64 {
        self.nanos[op.slot()].load(Ordering::Relaxed)
    }

    /// Total rank-0 wall-clock nanoseconds across all collective kinds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        CollectiveOp::ALL.iter().map(|&op| self.nanos(op)).sum()
    }

    /// Records one posted chunk of a chunked collective of kind `op`.
    /// Recorded once per call (on rank 0) like byte volumes, so
    /// `chunk_posts / calls` is the average pipeline depth actually used —
    /// the quantity the execution planner's per-chunk overhead term
    /// multiplies.
    pub fn record_chunk_post(&self, op: CollectiveOp) {
        self.chunk_posts[op.slot()].fetch_add(1, Ordering::Relaxed);
    }

    /// Total chunks posted for chunked collectives of `op`.
    #[must_use]
    pub fn chunk_posts(&self, op: CollectiveOp) -> u64 {
        self.chunk_posts[op.slot()].load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        for i in 0..4 {
            self.bytes[i].store(0, Ordering::Relaxed);
            self.calls[i].store(0, Ordering::Relaxed);
            self.nanos[i].store(0, Ordering::Relaxed);
            self.chunk_posts[i].store(0, Ordering::Relaxed);
        }
    }
}

/// One member's wall-clock time blocked in each collective kind, snapshot
/// from [`CommGroup::times`](crate::CommGroup::times). Unlike
/// [`TrafficStats`] (one shared ledger, recorded once per call), this is
/// per-chip: the engine collects one `CommTimes` from every chip thread and
/// can dump a per-chip summary to show whether overlap actually hid the
/// communication time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommTimes {
    nanos: [u64; 4],
}

impl CommTimes {
    pub(crate) const fn from_nanos(nanos: [u64; 4]) -> Self {
        CommTimes { nanos }
    }

    /// Nanoseconds this member spent blocked in collectives of kind `op`.
    #[must_use]
    pub fn nanos(&self, op: CollectiveOp) -> u64 {
        self.nanos[op.slot()]
    }

    /// Nanoseconds blocked across all collective kinds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Accumulates another snapshot into this one (for summing groups: a
    /// chip that belongs to several [`CommGroup`](crate::CommGroup)s merges
    /// the per-group snapshots).
    pub fn merge(&mut self, other: &CommTimes) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_op() {
        let s = TrafficStats::new();
        s.record(CollectiveOp::AllGather, 100);
        s.record(CollectiveOp::AllGather, 50);
        s.record(CollectiveOp::AllToAll, 7);
        assert_eq!(s.bytes(CollectiveOp::AllGather), 150);
        assert_eq!(s.calls(CollectiveOp::AllGather), 2);
        assert_eq!(s.bytes(CollectiveOp::AllToAll), 7);
        assert_eq!(s.bytes(CollectiveOp::ReduceScatter), 0);
        assert_eq!(s.total_bytes(), 157);
    }

    #[test]
    fn reset_clears() {
        let s = TrafficStats::new();
        s.record(CollectiveOp::AllReduce, 10);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.calls(CollectiveOp::AllReduce), 0);
    }

    #[test]
    fn concurrent_recording() {
        let s = TrafficStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record(CollectiveOp::ReduceScatter, 3);
                    }
                });
            }
        });
        assert_eq!(s.bytes(CollectiveOp::ReduceScatter), 24_000);
        assert_eq!(s.calls(CollectiveOp::ReduceScatter), 8_000);
    }
}
