//! Deterministic fault injection for the collectives layer.
//!
//! A [`FaultPlan`] is a set of `(chip, call index) → fault` triggers armed
//! into every [`CommGroup`](crate::CommGroup) handle a chip owns (via a
//! shared [`FaultState`]). Each chip counts its own collective calls across
//! all of its groups, so "crash chip 2 on its 3rd collective" means the same
//! thing on every layout and is bitwise reproducible from a seed.
//!
//! Faults and deadline expiries surface as a structured [`CollectiveError`]
//! rather than a hang: the error travels as a typed panic payload (see
//! [`crate::sync::Barrier::wait`]) so the collectives' tensor-returning API
//! stays unchanged, and the engine harvests it from the worker's join
//! handle.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Structured failure of a collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveError {
    /// A peer chip panicked (or was fault-injected to crash); `rank` is the
    /// global chip id of the dead peer, even when observed through a
    /// sub-communicator whose local ranks are numbered differently.
    PeerCrashed {
        /// Global chip id of the crashed peer.
        rank: usize,
    },
    /// A barrier wait exceeded its deadline (a peer is stalled or a link is
    /// pathologically slow), or a peer's wait did and it cancelled the
    /// group.
    Timeout {
        /// The deadline that expired (the observer's own, for waiters woken
        /// by a peer's cancellation).
        deadline: Duration,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::PeerCrashed { rank } => {
                write!(f, "collective aborted: peer chip {rank} crashed")
            }
            CollectiveError::Timeout { deadline } => {
                write!(f, "collective timed out after {deadline:?}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

/// Panic payload carried by the chip that crashed by injection itself (its
/// peers carry [`CollectiveError::PeerCrashed`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Global chip id that was crashed.
    pub chip: usize,
}

/// What a trigger does to the chip when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The chip dies: its groups are cancelled and it unwinds with
    /// [`InjectedCrash`].
    Crash,
    /// The chip freezes for the duration before its collective (peers hit
    /// their deadline unless the stall is shorter). The stall aborts early
    /// if a peer cancels the group meanwhile.
    Stall(Duration),
    /// A slow link: the chip's collective is delayed by the duration but
    /// completes normally. Never an error — execution is merely late.
    Delay(Duration),
}

/// One `(chip, call index) → fault` trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// Global chip id the fault fires on.
    pub chip: usize,
    /// Zero-based index of the chip's collective call (counted across all
    /// of its groups since arming) at which the fault fires.
    pub call: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A deterministic set of fault triggers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    triggers: Vec<Trigger>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a crash of `chip` at its `call`-th collective.
    #[must_use]
    pub fn crash(mut self, chip: usize, call: u64) -> Self {
        self.triggers.push(Trigger { chip, call, kind: FaultKind::Crash });
        self
    }

    /// Add a stall of `chip` for `dur` at its `call`-th collective.
    #[must_use]
    pub fn stall(mut self, chip: usize, call: u64, dur: Duration) -> Self {
        self.triggers.push(Trigger { chip, call, kind: FaultKind::Stall(dur) });
        self
    }

    /// Add a delayed link: `chip`'s `call`-th collective is late by `dur`.
    #[must_use]
    pub fn delay(mut self, chip: usize, call: u64, dur: Duration) -> Self {
        self.triggers.push(Trigger { chip, call, kind: FaultKind::Delay(dur) });
        self
    }

    /// A single seeded crash: chip and call index are drawn from `seed`
    /// (splitmix64) over `n_chips` chips and call indices `0..max_call`.
    /// The same seed always produces the same trigger.
    #[must_use]
    pub fn seeded_crash(seed: u64, n_chips: usize, max_call: u64) -> Self {
        assert!(n_chips > 0 && max_call > 0, "seeded crash needs a non-empty domain");
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let chip = (next() % n_chips as u64) as usize;
        let call = next() % max_call;
        FaultPlan::new().crash(chip, call)
    }

    /// The triggers in insertion order.
    #[must_use]
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// True iff the plan has no triggers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// The fault (if any) that fires for `chip` at call index `call`.
    #[must_use]
    pub fn fires(&self, chip: usize, call: u64) -> Option<FaultKind> {
        self.triggers
            .iter()
            .find(|t| t.chip == chip && t.call == call)
            .map(|t| t.kind)
    }
}

/// An armed [`FaultPlan`]: the plan plus one collective-call counter per
/// chip, shared by all of that chip's group handles.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    counters: Vec<AtomicU64>,
}

impl FaultState {
    /// Arm `plan` over `n_chips` chips with all counters at zero.
    #[must_use]
    pub fn new(plan: FaultPlan, n_chips: usize) -> Self {
        FaultState {
            plan,
            counters: (0..n_chips).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Count one collective call by `chip` and return the fault that fires
    /// at this call, if any.
    pub fn on_call(&self, chip: usize) -> Option<FaultKind> {
        let call = self.counters[chip].fetch_add(1, Ordering::Relaxed);
        self.plan.fires(chip, call)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_only_at_its_trigger() {
        let plan = FaultPlan::new().crash(1, 3).delay(2, 0, Duration::from_millis(1));
        assert_eq!(plan.fires(1, 3), Some(FaultKind::Crash));
        assert_eq!(plan.fires(1, 2), None);
        assert_eq!(plan.fires(0, 3), None);
        assert_eq!(plan.fires(2, 0), Some(FaultKind::Delay(Duration::from_millis(1))));
    }

    #[test]
    fn seeded_crash_is_reproducible_and_in_range() {
        for seed in 0..64 {
            let a = FaultPlan::seeded_crash(seed, 4, 7);
            let b = FaultPlan::seeded_crash(seed, 4, 7);
            assert_eq!(a, b);
            let t = a.triggers()[0];
            assert!(t.chip < 4 && t.call < 7);
            assert_eq!(t.kind, FaultKind::Crash);
        }
        // Different seeds reach different triggers (not a constant plan).
        let distinct: std::collections::HashSet<(usize, u64)> = (0..64)
            .map(|s| {
                let t = FaultPlan::seeded_crash(s, 4, 7).triggers()[0];
                (t.chip, t.call)
            })
            .collect();
        assert!(distinct.len() > 8, "seeded crashes should spread over the domain");
    }

    #[test]
    fn state_counts_calls_per_chip() {
        let state = FaultState::new(FaultPlan::new().crash(0, 1), 2);
        assert_eq!(state.on_call(0), None); // call 0
        assert_eq!(state.on_call(1), None); // chip 1 has its own counter
        assert_eq!(state.on_call(0), Some(FaultKind::Crash)); // call 1
        assert_eq!(state.on_call(0), None); // one-shot: counter moves past
    }
}
