//! Abstract transition table of the barrier/deadline/cancel protocol.
//!
//! The fault tolerance of the runtime rests on a small set of structural
//! guarantees ("edges") scattered across `esti-collectives` and the engine's
//! unwind handler in `esti-runtime`. Each edge is a concrete line of code;
//! together they form the protocol state machine that the fault-path
//! liveness pass in `esti-verify` explores. This module states the edges
//! *as data* so the analyzer interprets the same contract the
//! implementation maintains — and so a seeded mutation (dropping one edge)
//! demonstrably produces a hang or an orphaned post.
//!
//! The edge-to-code map:
//!
//! | edge | realized by |
//! |------|-------------|
//! | `crash_cancels_entered_group` | [`CommGroup::fault_point`]: an injected crash cancels the barrier of the group being entered *before* panicking |
//! | `unwind_cancels_all_groups` | the engine's per-chip `catch_unwind` calls `cancel_chip_groups`, cancelling **every** group the dead chip belongs to with the typed cause |
//! | `cancel_wakes_waiters` | [`Barrier::cancel`]/[`Barrier::cancel_timeout`]: fate is set first-writer-wins and then `notify_all` wakes every blocked waiter |
//! | `entry_checks_fate` | [`Barrier::wait_deadline`] re-checks fate *at entry*, so a surviving rank never posts into an already-cancelled group |
//! | `deadline_armed` | [`CommGroup::set_deadline`] arms a timeout for every subsequent barrier wait |
//! | `timeout_broadcasts` | an expiring waiter sets [`BarrierFate::TimedOut`] and notifies all, so one expiry aborts every member |
//! | `stall_aborts_on_cancel` | [`CommGroup::fault_point`]: an injected stall sleeps in slices, polling the barrier fate, and aborts with the typed error once its group is cancelled |
//!
//! [`CommGroup::fault_point`]: crate::CommGroup
//! [`CommGroup::set_deadline`]: crate::CommGroup::set_deadline
//! [`Barrier::cancel`]: crate::sync::Barrier::cancel
//! [`Barrier::cancel_timeout`]: crate::sync::Barrier::cancel_timeout
//! [`Barrier::wait_deadline`]: crate::sync::Barrier::wait_deadline
//! [`BarrierFate::TimedOut`]: crate::BarrierFate::TimedOut

/// One structural guarantee of the fault protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolEdge {
    /// An injected crash cancels the group it was entering before panicking.
    CrashCancelsEnteredGroup,
    /// The per-chip unwind handler cancels all of the dead chip's groups.
    UnwindCancelsAllGroups,
    /// Cancelling a barrier wakes every rank currently blocked on it.
    CancelWakesWaiters,
    /// A rank arriving at a barrier first checks whether it was cancelled.
    EntryChecksFate,
    /// Collective waits carry a deadline.
    DeadlineArmed,
    /// A deadline expiry is broadcast to all members, not suffered alone.
    TimeoutBroadcasts,
    /// A stalled rank observes cancellation of its group and aborts.
    StallAbortsOnCancel,
}

impl ProtocolEdge {
    /// Every edge, in a fixed order.
    pub const ALL: [ProtocolEdge; 7] = [
        ProtocolEdge::CrashCancelsEnteredGroup,
        ProtocolEdge::UnwindCancelsAllGroups,
        ProtocolEdge::CancelWakesWaiters,
        ProtocolEdge::EntryChecksFate,
        ProtocolEdge::DeadlineArmed,
        ProtocolEdge::TimeoutBroadcasts,
        ProtocolEdge::StallAbortsOnCancel,
    ];
}

/// Which edges a protocol implementation provides.
///
/// [`ProtocolModel::implemented`] describes this crate (all edges present);
/// [`ProtocolModel::without`] drops one edge, for mutation tests that prove
/// the liveness analysis actually depends on each guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolModel {
    /// See [`ProtocolEdge::CrashCancelsEnteredGroup`].
    pub crash_cancels_entered_group: bool,
    /// See [`ProtocolEdge::UnwindCancelsAllGroups`].
    pub unwind_cancels_all_groups: bool,
    /// See [`ProtocolEdge::CancelWakesWaiters`].
    pub cancel_wakes_waiters: bool,
    /// See [`ProtocolEdge::EntryChecksFate`].
    pub entry_checks_fate: bool,
    /// See [`ProtocolEdge::DeadlineArmed`].
    pub deadline_armed: bool,
    /// See [`ProtocolEdge::TimeoutBroadcasts`].
    pub timeout_broadcasts: bool,
    /// See [`ProtocolEdge::StallAbortsOnCancel`].
    pub stall_aborts_on_cancel: bool,
}

impl ProtocolModel {
    /// The protocol this crate and the engine's unwind handler implement.
    #[must_use]
    pub fn implemented() -> Self {
        ProtocolModel {
            crash_cancels_entered_group: true,
            unwind_cancels_all_groups: true,
            cancel_wakes_waiters: true,
            entry_checks_fate: true,
            deadline_armed: true,
            timeout_broadcasts: true,
            stall_aborts_on_cancel: true,
        }
    }

    /// This model with one edge removed (for seeded-mutation tests).
    #[must_use]
    pub fn without(mut self, edge: ProtocolEdge) -> Self {
        *self.edge_mut(edge) = false;
        self
    }

    /// Whether `edge` is present.
    #[must_use]
    pub fn has(&self, edge: ProtocolEdge) -> bool {
        match edge {
            ProtocolEdge::CrashCancelsEnteredGroup => self.crash_cancels_entered_group,
            ProtocolEdge::UnwindCancelsAllGroups => self.unwind_cancels_all_groups,
            ProtocolEdge::CancelWakesWaiters => self.cancel_wakes_waiters,
            ProtocolEdge::EntryChecksFate => self.entry_checks_fate,
            ProtocolEdge::DeadlineArmed => self.deadline_armed,
            ProtocolEdge::TimeoutBroadcasts => self.timeout_broadcasts,
            ProtocolEdge::StallAbortsOnCancel => self.stall_aborts_on_cancel,
        }
    }

    fn edge_mut(&mut self, edge: ProtocolEdge) -> &mut bool {
        match edge {
            ProtocolEdge::CrashCancelsEnteredGroup => &mut self.crash_cancels_entered_group,
            ProtocolEdge::UnwindCancelsAllGroups => &mut self.unwind_cancels_all_groups,
            ProtocolEdge::CancelWakesWaiters => &mut self.cancel_wakes_waiters,
            ProtocolEdge::EntryChecksFate => &mut self.entry_checks_fate,
            ProtocolEdge::DeadlineArmed => &mut self.deadline_armed,
            ProtocolEdge::TimeoutBroadcasts => &mut self.timeout_broadcasts,
            ProtocolEdge::StallAbortsOnCancel => &mut self.stall_aborts_on_cancel,
        }
    }

    /// Edges missing relative to the implemented protocol.
    #[must_use]
    pub fn missing(&self) -> Vec<ProtocolEdge> {
        ProtocolEdge::ALL.into_iter().filter(|&e| !self.has(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implemented_protocol_has_every_edge() {
        let m = ProtocolModel::implemented();
        assert!(m.missing().is_empty());
        for e in ProtocolEdge::ALL {
            assert!(m.has(e), "{e:?} should be implemented");
        }
    }

    #[test]
    fn without_drops_exactly_one_edge() {
        for e in ProtocolEdge::ALL {
            let m = ProtocolModel::implemented().without(e);
            assert!(!m.has(e));
            assert_eq!(m.missing(), vec![e]);
            for other in ProtocolEdge::ALL {
                if other != e {
                    assert!(m.has(other), "{other:?} should survive dropping {e:?}");
                }
            }
        }
    }
}
