//! Synchronization primitives for the collective groups.
//!
//! Under `--cfg loom` the mutex and condvar come from the `esti-loom` model
//! checker, so every blocking operation in [`CommGroup`](crate::CommGroup)
//! becomes a scheduling point the checker can interleave. In normal builds
//! they are the plain `std::sync` types with zero overhead.
//!
//! The barrier is our own sense-reversing implementation on top of the
//! switched mutex/condvar (rather than `std::sync::Barrier`) for exactly
//! that reason: its blocking must be visible to the model checker.

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex};

/// A reusable barrier for a fixed set of participants.
///
/// Sense-reversing via a generation counter: the last arrival of a
/// generation resets the count and bumps the generation, and earlier
/// arrivals wait for the generation to change — so back-to-back `wait`
/// calls (the two phases of a mailbox exchange) cannot confuse a fast
/// participant's second phase with a slow participant's first.
pub struct Barrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl Barrier {
    /// A barrier releasing once `n` participants have called [`wait`].
    ///
    /// [`wait`]: Barrier::wait
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier requires at least one participant");
        Barrier {
            state: Mutex::new(BarrierState { arrived: 0, generation: 0 }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Block until all `n` participants have arrived. Returns `true` on
    /// exactly one participant per generation (the last to arrive).
    pub fn wait(&self) -> bool {
        let mut s = self.state.lock().expect("barrier state poisoned");
        s.arrived += 1;
        if s.arrived == self.n {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return true;
        }
        let generation = s.generation;
        while s.generation == generation {
            s = self.cv.wait(s).expect("barrier state poisoned");
        }
        false
    }
}
