//! Synchronization primitives for the collective groups.
//!
//! Under `--cfg loom` the mutex and condvar come from the `esti-loom` model
//! checker, so every blocking operation in [`CommGroup`](crate::CommGroup)
//! becomes a scheduling point the checker can interleave. In normal builds
//! they are the plain `std::sync` types with zero overhead.
//!
//! The barrier is our own sense-reversing implementation on top of the
//! switched mutex/condvar (rather than `std::sync::Barrier`) for two
//! reasons: its blocking must be visible to the model checker, and it must
//! support *cancellation* and *deadlines* — one crashed or stalled chip has
//! to surface a structured [`CollectiveError`] on every peer instead of
//! leaving them blocked forever.

use std::time::Duration;

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, PoisonError};
#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::fault::CollectiveError;

/// Why a barrier stopped admitting waiters.
///
/// The first writer wins: a cancellation records its cause once and every
/// later wait (and every waiter currently blocked) observes that original
/// cause, so a crash is never re-labelled by the cascade of timeouts it
/// provokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierFate {
    /// Normal operation.
    Alive,
    /// A participant with this global chip id died.
    Crashed(usize),
    /// A participant's deadline expired and it abandoned the group.
    TimedOut,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    fate: BarrierFate,
}

/// A reusable barrier for a fixed set of participants.
///
/// Sense-reversing via a generation counter: the last arrival of a
/// generation resets the count and bumps the generation, and earlier
/// arrivals wait for the generation to change — so back-to-back `wait`
/// calls (the two phases of a mailbox exchange) cannot confuse a fast
/// participant's second phase with a slow participant's first.
pub struct Barrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
}

impl Barrier {
    /// A barrier releasing once `n` participants have called [`wait`].
    ///
    /// [`wait`]: Barrier::wait
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier requires at least one participant");
        Barrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                fate: BarrierFate::Alive,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Lock the state, recovering from poisoning: a participant that
    /// panicked while holding the lock does not take the barrier's
    /// bookkeeping down with it — the dead rank is reported through the
    /// fate channel ([`Barrier::cancel`]), not through the poison bit.
    fn lock(&self) -> MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mark the barrier dead because chip `rank` (global id) crashed, and
    /// wake every current waiter. Idempotent; the first recorded cause
    /// wins.
    pub fn cancel(&self, rank: usize) {
        let mut s = self.lock();
        if s.fate == BarrierFate::Alive {
            s.fate = BarrierFate::Crashed(rank);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Mark the barrier dead because a participant's deadline expired, and
    /// wake every current waiter. Idempotent; the first recorded cause
    /// wins.
    pub fn cancel_timeout(&self) {
        let mut s = self.lock();
        if s.fate == BarrierFate::Alive {
            s.fate = BarrierFate::TimedOut;
        }
        drop(s);
        self.cv.notify_all();
    }

    /// The barrier's current fate (used by stall injection to abandon a
    /// sleep early once the group is already dead).
    pub fn fate(&self) -> BarrierFate {
        self.lock().fate
    }

    fn fate_error(fate: BarrierFate, deadline: Option<Duration>) -> Option<CollectiveError> {
        match fate {
            BarrierFate::Alive => None,
            BarrierFate::Crashed(rank) => Some(CollectiveError::PeerCrashed { rank }),
            BarrierFate::TimedOut => Some(CollectiveError::Timeout {
                deadline: deadline.unwrap_or(Duration::ZERO),
            }),
        }
    }

    /// Block until all `n` participants have arrived, the optional deadline
    /// expires, or the barrier is cancelled. `Ok(true)` on exactly one
    /// participant per generation (the last to arrive).
    ///
    /// On its own timeout the caller marks the whole barrier
    /// [`BarrierFate::TimedOut`] before returning, so peers blocked on the
    /// same generation wake immediately with the same structured error
    /// instead of each sitting out its own full deadline.
    ///
    /// Under `--cfg loom` there is no clock: a deadline wait "expires" only
    /// at quiescence (when no other thread can make progress), which is the
    /// earliest schedule where a real timeout could matter.
    ///
    /// # Errors
    ///
    /// [`CollectiveError::PeerCrashed`] if the barrier was cancelled by a
    /// crash, [`CollectiveError::Timeout`] if this wait (or a peer's)
    /// exceeded its deadline.
    pub fn wait_deadline(&self, deadline: Option<Duration>) -> Result<bool, CollectiveError> {
        let mut s = self.lock();
        if let Some(err) = Self::fate_error(s.fate, deadline) {
            return Err(err);
        }
        s.arrived += 1;
        if s.arrived == self.n {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            drop(s);
            self.cv.notify_all();
            return Ok(true);
        }
        let generation = s.generation;
        #[cfg(not(loom))]
        let start = std::time::Instant::now();
        while s.generation == generation {
            if let Some(err) = Self::fate_error(s.fate, deadline) {
                return Err(err);
            }
            match deadline {
                None => s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner),
                Some(limit) => {
                    #[cfg(not(loom))]
                    let remaining = limit.saturating_sub(start.elapsed());
                    #[cfg(loom)]
                    let remaining = limit;
                    let (guard, res) = self
                        .cv
                        .wait_timeout(s, remaining)
                        .unwrap_or_else(PoisonError::into_inner);
                    s = guard;
                    #[cfg(not(loom))]
                    let expired = res.timed_out() && start.elapsed() >= limit;
                    #[cfg(loom)]
                    let expired = res.timed_out();
                    if expired && s.generation == generation {
                        if let Some(err) = Self::fate_error(s.fate, deadline) {
                            return Err(err);
                        }
                        s.fate = BarrierFate::TimedOut;
                        drop(s);
                        self.cv.notify_all();
                        return Err(CollectiveError::Timeout { deadline: limit });
                    }
                }
            }
        }
        Ok(false)
    }

    /// Block until all `n` participants have arrived (no deadline), as the
    /// pre-fault-layer barrier did. Returns `true` on exactly one
    /// participant per generation (the last to arrive).
    ///
    /// # Panics
    ///
    /// Panics with a [`CollectiveError`] payload if the barrier is
    /// cancelled while waiting — block-forever still observes crashes.
    pub fn wait(&self) -> bool {
        match self.wait_deadline(None) {
            Ok(leader) => leader,
            Err(err) => std::panic::panic_any(err),
        }
    }
}
