//! Mailbox-and-barrier collective groups.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

use esti_tensor::{QuantizedMatrix, Tensor};

use crate::fault::{FaultKind, FaultState, InjectedCrash};
use crate::stats::{CollectiveOp, CommTimes, TrafficStats, ACT_BYTES};
use crate::sync::{Barrier, BarrierFate, Mutex, PoisonError};

/// What one mailbox slot carries: a dense activation tensor, or a quantized
/// weight shard moved in its wire format (int8 values + per-column f32
/// scales). Keeping the quantized form first-class in the mailbox is what
/// lets weight-gathered layouts move int8 bytes instead of the dequantized
/// f32 view — the ledger then charges the true quantized volume.
#[derive(Clone)]
enum Payload {
    Dense(Tensor),
    Quant(QuantizedMatrix),
}

impl Payload {
    fn into_dense(self) -> Tensor {
        match self {
            Payload::Dense(t) => t,
            Payload::Quant(_) => panic!("expected dense payload in mailbox slot"),
        }
    }

    fn into_quant(self) -> QuantizedMatrix {
        match self {
            Payload::Dense(_) => panic!("expected quantized payload in mailbox slot"),
            Payload::Quant(q) => q,
        }
    }
}

/// What one member claims to be doing, deposited before each collective in
/// debug builds so divergent members fail an assertion instead of
/// deadlocking at the barrier or corrupting each other's mailboxes.
#[cfg(all(debug_assertions, not(loom)))]
#[derive(Clone, PartialEq, Debug)]
struct CallMeta {
    /// Index of this call in the member's collective sequence.
    seq: u64,
    op: CollectiveOp,
    shape: Vec<usize>,
    /// Operative dimensions plus chunk count: `[dim, dim, chunks]` for
    /// gather/scatter/reduce, `[split_dim, concat_dim, chunks]` for
    /// all-to-all. Monolithic calls use `chunks == 1`; a chunked call whose
    /// peers disagree on the chunk count would desynchronize the mailbox
    /// protocol, so the count is part of the agreement check.
    dims: [usize; 3],
    /// Whether the payload moves in the quantized wire format. A member
    /// posting a dense tensor while a peer posts int8 values would corrupt
    /// the exchange, so the payload form is part of the agreement check.
    quant: bool,
}

struct Shared {
    slots: Vec<Mutex<Option<Payload>>>,
    barrier: Barrier,
    stats: Option<Arc<TrafficStats>>,
    #[cfg(all(debug_assertions, not(loom)))]
    meta: Vec<Mutex<Option<CallMeta>>>,
}

/// One member's handle to a collective group of simulated chips.
///
/// All members of a group must call the *same* collective with compatible
/// shapes, in the same order — exactly the SPMD discipline of the real
/// system. A group of size 1 degenerates to identity operations.
///
/// # Examples
///
/// ```
/// use esti_collectives::CommGroup;
/// use esti_tensor::Tensor;
///
/// // A group of one: collectives are identities.
/// let mut solo = CommGroup::create(1);
/// let g = solo.remove(0);
/// let t = Tensor::ones(vec![2, 2]);
/// assert_eq!(g.all_reduce(&t), t);
/// assert_eq!(g.all_gather(&t, 0), t);
/// ```
pub struct CommGroup {
    shared: Arc<Shared>,
    rank: usize,
    /// Per-member wall-clock nanoseconds blocked in each collective kind.
    times: [Cell<u64>; 4],
    /// Per-member nanoseconds spent *launching* chunked sub-transfers (the
    /// non-blocking `post` deposits) — the per-chunk overhead the execution
    /// planner's cost model charges per pipeline slot.
    post_nanos: Cell<u64>,
    /// Per-member nanoseconds the overlap loops spend folding collected
    /// partials (reported by the runtime via
    /// [`note_fold_nanos`](CommGroup::note_fold_nanos)).
    fold_nanos: Cell<u64>,
    /// Deadline applied to every barrier wait this member performs. `None`
    /// (the default for raw groups) blocks forever like the pre-fault
    /// protocol; the engine arms a finite deadline so a stalled peer
    /// surfaces a structured [`CollectiveError`](crate::CollectiveError)
    /// instead of a hang.
    deadline: Cell<Option<Duration>>,
    /// Armed fault plan, shared (with per-chip call counters) by all of
    /// this chip's group handles. `chip` is the *global* chip id, which may
    /// differ from `rank` inside a sub-communicator.
    fault: RefCell<Option<FaultArm>>,
    /// Number of collectives this member has issued (debug-build SPMD check).
    #[cfg(all(debug_assertions, not(loom)))]
    calls: Cell<u64>,
}

struct FaultArm {
    state: Arc<FaultState>,
    chip: usize,
}

impl std::fmt::Debug for CommGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommGroup")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .finish()
    }
}

impl CommGroup {
    /// Creates a group of `size` members. The returned handles are in rank
    /// order; hand one to each chip thread.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn create(size: usize) -> Vec<CommGroup> {
        CommGroup::create_impl(size, None)
    }

    /// Like [`CommGroup::create`], recording every collective call in
    /// `stats`.
    #[must_use]
    pub fn create_with_stats(size: usize, stats: Arc<TrafficStats>) -> Vec<CommGroup> {
        CommGroup::create_impl(size, Some(stats))
    }

    fn create_impl(size: usize, stats: Option<Arc<TrafficStats>>) -> Vec<CommGroup> {
        assert!(size > 0, "group size must be positive");
        let shared = Arc::new(Shared {
            slots: (0..size).map(|_| Mutex::new(None)).collect(),
            barrier: Barrier::new(size),
            stats,
            #[cfg(all(debug_assertions, not(loom)))]
            meta: (0..size).map(|_| Mutex::new(None)).collect(),
        });
        (0..size)
            .map(|rank| CommGroup {
                shared: Arc::clone(&shared),
                rank,
                times: Default::default(),
                post_nanos: Cell::new(0),
                fold_nanos: Cell::new(0),
                deadline: Cell::new(None),
                fault: RefCell::new(None),
                #[cfg(all(debug_assertions, not(loom)))]
                calls: Cell::new(0),
            })
            .collect()
    }

    /// This member's rank within the group.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of members in the group.
    #[must_use]
    pub fn size(&self) -> usize {
        self.shared.slots.len()
    }

    /// Sets the deadline applied to every barrier wait this member
    /// performs. `None` restores the pre-fault block-forever behaviour.
    pub fn set_deadline(&self, deadline: Option<Duration>) {
        self.deadline.set(deadline);
    }

    /// This member's barrier-wait deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline.get()
    }

    /// Arms `state`'s fault plan on this handle. `chip` is the global chip
    /// id owning the handle (its trigger key and the rank reported to peers
    /// on a crash); all of one chip's handles share one `state` so its
    /// collective calls are counted across groups.
    pub fn arm_faults(&self, state: Arc<FaultState>, chip: usize) {
        *self.fault.borrow_mut() = Some(FaultArm { state, chip });
    }

    /// Disarms any fault plan on this handle.
    pub fn clear_faults(&self) {
        *self.fault.borrow_mut() = None;
    }

    /// Marks the group dead because global chip `chip` crashed and wakes
    /// every member blocked in a collective; they surface
    /// [`CollectiveError::PeerCrashed`](crate::CollectiveError::PeerCrashed).
    /// Idempotent; the first recorded cause wins.
    pub fn cancel(&self, chip: usize) {
        self.shared.barrier.cancel(chip);
    }

    /// Marks the group dead because a member's deadline expired; blocked
    /// members surface
    /// [`CollectiveError::Timeout`](crate::CollectiveError::Timeout).
    pub fn cancel_timeout(&self) {
        self.shared.barrier.cancel_timeout();
    }

    /// One barrier phase under this member's deadline. A structured failure
    /// (peer crash, timeout) propagates as a typed panic payload so the
    /// tensor-returning collective API stays unchanged; the engine's
    /// per-chip `catch_unwind` harvests it into an `EngineError`.
    fn barrier_wait(&self) {
        if let Err(err) = self.shared.barrier.wait_deadline(self.deadline.get()) {
            std::panic::panic_any(err);
        }
    }

    /// Fault-injection hook at the top of every collective entry point:
    /// counts this chip's call and fires its armed trigger, if any.
    fn fault_point(&self) {
        let Some((state, chip)) = self
            .fault
            .borrow()
            .as_ref()
            .map(|arm| (Arc::clone(&arm.state), arm.chip))
        else {
            return;
        };
        match state.on_call(chip) {
            None => {}
            Some(FaultKind::Crash) => {
                // Die before touching the mailbox: peers observe the
                // cancellation (here for this group; the engine cancels the
                // chip's other groups when the unwind reaches it).
                self.shared.barrier.cancel(chip);
                std::panic::panic_any(InjectedCrash { chip });
            }
            Some(FaultKind::Stall(dur)) => {
                // Freeze in small slices, abandoning the stall early once a
                // peer has cancelled the group (its deadline expired) — the
                // engine then tears down in ~the deadline, not the full
                // stall duration.
                let slice = Duration::from_millis(2);
                let mut left = dur;
                while left > Duration::ZERO {
                    if self.shared.barrier.fate() != BarrierFate::Alive {
                        break;
                    }
                    let nap = slice.min(left);
                    std::thread::sleep(nap);
                    left -= nap;
                }
            }
            Some(FaultKind::Delay(dur)) => std::thread::sleep(dur),
        }
    }

    /// Core exchange: every member deposits a tensor and receives clones of
    /// everyone's deposits, in rank order. Two barrier phases ensure no
    /// member races ahead and overwrites a slot that others still read.
    fn exchange(&self, t: Tensor) -> Vec<Tensor> {
        self.exchange_payload(Payload::Dense(t))
            .into_iter()
            .map(Payload::into_dense)
            .collect()
    }

    /// [`exchange`](Self::exchange) for quantized weight shards: every
    /// member deposits int8 values + scales and receives everyone's, in
    /// rank order.
    fn exchange_quant(&self, q: QuantizedMatrix) -> Vec<QuantizedMatrix> {
        self.exchange_payload(Payload::Quant(q))
            .into_iter()
            .map(Payload::into_quant)
            .collect()
    }

    // Vetted: "peer deposited" is a two-phase-barrier protocol invariant
    // (every member deposits before any reads); its violation is a bug in
    // this file, not a runtime fault. Faults surface via barrier_wait.
    #[allow(clippy::expect_used)]
    fn exchange_payload(&self, p: Payload) -> Vec<Payload> {
        if self.size() == 1 {
            return vec![p];
        }
        *self.shared.slots[self.rank].lock().unwrap_or_else(PoisonError::into_inner) = Some(p);
        self.barrier_wait();
        let all: Vec<Payload> = self
            .shared
            .slots
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .expect("peer deposited")
            })
            .collect();
        self.barrier_wait();
        all
    }

    /// Debug-build SPMD conformance check: every member deposits what it is
    /// about to do; after a barrier, each asserts all deposits agree. A
    /// member that diverged (wrong op, wrong shape, out-of-order call) fails
    /// fast with a message naming both sides, instead of deadlocking at the
    /// exchange barrier or silently mixing shards. Every member performs the
    /// identical comparison, so on disagreement *all* members panic and no
    /// thread is left waiting on a barrier that will never fill.
    ///
    /// Disabled under `--cfg loom` to keep the model-checked state space at
    /// the size of the production protocol.
    #[cfg(all(debug_assertions, not(loom)))]
    // Vetted: "peer deposited" is a two-phase-barrier protocol invariant
    // (every member deposits before any reads); its violation is a bug in
    // this file, not a runtime fault. Faults surface via barrier_wait.
    #[allow(clippy::expect_used)]
    fn debug_check_agreement(&self, op: CollectiveOp, shape: &[usize], dims: [usize; 3], quant: bool) {
        if self.size() == 1 {
            return;
        }
        let seq = self.calls.get();
        self.calls.set(seq + 1);
        let mine = CallMeta { seq, op, shape: shape.to_vec(), dims, quant };
        *self.shared.meta[self.rank].lock().unwrap_or_else(PoisonError::into_inner) =
            Some(mine.clone());
        self.barrier_wait();
        for (peer, slot) in self.shared.meta.iter().enumerate() {
            let theirs = slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
                .expect("peer deposited call metadata");
            assert!(
                mine == theirs,
                "SPMD violation: rank {} issued {mine:?} but rank {peer} issued {theirs:?} — \
                 all members of a group must execute the same collective sequence",
                self.rank,
            );
        }
        self.barrier_wait();
    }

    #[cfg(not(all(debug_assertions, not(loom))))]
    fn debug_check_agreement(
        &self,
        _op: CollectiveOp,
        _shape: &[usize],
        _dims: [usize; 3],
        _quant: bool,
    ) {
    }

    fn record(&self, op: CollectiveOp, elems: usize) {
        self.record_raw(op, elems as u64 * ACT_BYTES);
    }

    /// Records an exact byte count — the quantized collectives charge their
    /// true wire volume (int8 values + f32 scales) instead of
    /// `elements × ACT_BYTES`.
    fn record_raw(&self, op: CollectiveOp, bytes: u64) {
        if self.rank == 0 {
            if let Some(stats) = &self.shared.stats {
                stats.record(op, bytes);
            }
        }
    }

    /// Accumulates wall-clock time blocked in a collective: always into this
    /// member's [`times`](CommGroup::times), and on rank 0 into the shared
    /// [`TrafficStats`] ledger.
    fn note_time(&self, op: CollectiveOp, start: Instant) {
        let d = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cell = &self.times[op.slot()];
        cell.set(cell.get().wrapping_add(d));
        if self.rank == 0 {
            if let Some(stats) = &self.shared.stats {
                stats.record_nanos(op, d);
            }
        }
    }

    /// This member's accumulated wall-clock time blocked per collective
    /// kind. For chunked collectives only the blocking `collect` phase
    /// counts — compute slotted between `post` and `collect` is excluded —
    /// so comparing this against a monolithic run shows how much
    /// communication the overlap actually hid.
    #[must_use]
    pub fn times(&self) -> CommTimes {
        CommTimes::from_nanos([
            self.times[0].get(),
            self.times[1].get(),
            self.times[2].get(),
            self.times[3].get(),
        ])
    }

    /// Clears this member's accumulated collective times (including the
    /// per-chunk launch and fold overhead counters).
    pub fn reset_times(&self) {
        for t in &self.times {
            t.set(0);
        }
        self.post_nanos.set(0);
        self.fold_nanos.set(0);
    }

    /// Nanoseconds this member has spent in the non-blocking `post` phase
    /// of chunked collectives — per-chunk launch overhead (slot locking and
    /// payload deposit) that monolithic execution pays only once per
    /// collective. One of the two overhead terms the execution planner's
    /// calibrated cost model charges per pipeline slot.
    #[must_use]
    pub fn post_nanos(&self) -> u64 {
        self.post_nanos.get()
    }

    /// Nanoseconds the overlap loops reported spending in per-chunk partial
    /// folds on this member (see [`note_fold_nanos`](Self::note_fold_nanos)).
    #[must_use]
    pub fn fold_nanos(&self) -> u64 {
        self.fold_nanos.get()
    }

    /// Adds `nanos` of per-chunk fold time (accumulating collected partials
    /// into the preallocated output). Called by the runtime's overlap loops
    /// so chunk-granularity bookkeeping lives next to the transport it
    /// belongs to.
    pub fn note_fold_nanos(&self, nanos: u64) {
        self.fold_nanos.set(self.fold_nanos.get().wrapping_add(nanos));
    }

    /// Accumulates `start.elapsed()` into the chunk-launch counter and, on
    /// rank 0, records one posted chunk of `op` in the shared ledger.
    fn note_post(&self, op: CollectiveOp, start: Instant) {
        let d = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.post_nanos.set(self.post_nanos.get().wrapping_add(d));
        if self.rank == 0 {
            if let Some(stats) = &self.shared.stats {
                stats.record_chunk_post(op);
            }
        }
    }

    /// all-gather(`dim`): concatenates every member's `shard` along `dim`
    /// in rank order, replicating the result on all members.
    ///
    /// Traffic ledger: per-chip *output* bytes (Appendix A.1).
    ///
    /// # Panics
    ///
    /// Panics if members pass incompatible shapes.
    #[must_use]
    pub fn all_gather(&self, shard: &Tensor, dim: usize) -> Tensor {
        let t0 = Instant::now();
        self.fault_point();
        self.debug_check_agreement(CollectiveOp::AllGather, shard.shape(), [dim, dim, 1], false);
        let parts = self.exchange(shard.clone());
        let refs: Vec<&Tensor> = parts.iter().collect();
        let out = Tensor::concat(&refs, dim);
        self.record(CollectiveOp::AllGather, out.numel());
        self.note_time(CollectiveOp::AllGather, t0);
        out
    }

    /// reduce-scatter(`dim`): sums every member's `input` element-wise, then
    /// returns to each member its rank's slice of the sum along `dim`.
    ///
    /// Traffic ledger: per-chip *input* bytes (Appendix A.1).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by the group size or shapes differ.
    #[must_use]
    pub fn reduce_scatter(&self, input: &Tensor, dim: usize) -> Tensor {
        let t0 = Instant::now();
        self.fault_point();
        self.debug_check_agreement(CollectiveOp::ReduceScatter, input.shape(), [dim, dim, 1], false);
        self.record(CollectiveOp::ReduceScatter, input.numel());
        if self.size() == 1 {
            return input.clone();
        }
        let parts = self.exchange(input.clone());
        let mut sum = parts[0].clone();
        for p in &parts[1..] {
            sum = &sum + p;
        }
        let k = self.size();
        assert!(
            sum.dim(dim).is_multiple_of(k),
            "reduce-scatter dim {dim} of size {} not divisible by group size {k}",
            sum.dim(dim)
        );
        let part = sum.dim(dim) / k;
        let out = sum.slice(dim, self.rank * part, part);
        self.note_time(CollectiveOp::ReduceScatter, t0);
        out
    }

    /// all-reduce: sums every member's `input` element-wise, replicating the
    /// result. Equivalent to reduce-scatter followed by all-gather
    /// (Section 3.1) and charged as both in the traffic ledger.
    #[must_use]
    pub fn all_reduce(&self, input: &Tensor) -> Tensor {
        let t0 = Instant::now();
        self.fault_point();
        self.debug_check_agreement(CollectiveOp::AllReduce, input.shape(), [0, 0, 1], false);
        self.record(CollectiveOp::AllReduce, input.numel() * 2);
        if self.size() == 1 {
            return input.clone();
        }
        let parts = self.exchange(input.clone());
        let mut sum = parts[0].clone();
        for p in &parts[1..] {
            sum = &sum + p;
        }
        self.note_time(CollectiveOp::AllReduce, t0);
        sum
    }

    /// all-to-all: splits every member's `input` into `size()` slices along
    /// `split_dim`; member `r` receives slice `r` from everyone,
    /// concatenated along `concat_dim` in rank order. This is the resharding
    /// primitive that moves multiquery attention from head-sharded to
    /// batch-sharded layout (Section 3.3, Figure 5b).
    ///
    /// Traffic ledger: per-chip payload bytes (the full input; the `1/K`
    /// that stays local is excluded by the analytic model, not the ledger).
    ///
    /// # Panics
    ///
    /// Panics if `split_dim` is not divisible by the group size.
    #[must_use]
    pub fn all_to_all(&self, input: &Tensor, split_dim: usize, concat_dim: usize) -> Tensor {
        let t0 = Instant::now();
        self.fault_point();
        self.debug_check_agreement(CollectiveOp::AllToAll, input.shape(), [split_dim, concat_dim, 1], false);
        self.record(CollectiveOp::AllToAll, input.numel());
        if self.size() == 1 {
            return input.clone();
        }
        let k = self.size();
        assert!(
            input.dim(split_dim).is_multiple_of(k),
            "all-to-all split dim {split_dim} of size {} not divisible by group size {k}",
            input.dim(split_dim)
        );
        let parts = self.exchange(input.clone());
        let part = input.dim(split_dim) / k;
        let mine: Vec<Tensor> = parts
            .iter()
            .map(|p| p.slice(split_dim, self.rank * part, part))
            .collect();
        let refs: Vec<&Tensor> = mine.iter().collect();
        let out = Tensor::concat(&refs, concat_dim);
        self.note_time(CollectiveOp::AllToAll, t0);
        out
    }

    /// Quantized all-gather: every member deposits its int8 weight shard in
    /// wire format (values + per-column scales) and receives every rank's
    /// shard, in rank order. The caller reassembles (or streams) them —
    /// returning the parts rather than a concatenation keeps each shard's
    /// scales attached to its values.
    ///
    /// `dim` is the logical concatenation dimension of the gather (0 = row
    /// shards sharing no scales, 1 = column shards partitioning the scale
    /// vector); it only participates in the SPMD agreement check here.
    ///
    /// Traffic ledger: per-chip *output* bytes like the dense
    /// [`all_gather`](Self::all_gather), but at the true quantized volume —
    /// `size() × shard.storage_bytes()` (1 byte per value + 4 per scale)
    /// instead of `elements × 2`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if members disagree on op, shape or dims.
    #[must_use]
    pub fn all_gather_quant(&self, shard: &QuantizedMatrix, dim: usize) -> Vec<QuantizedMatrix> {
        let t0 = Instant::now();
        self.fault_point();
        let shape = [shard.rows(), shard.cols()];
        self.debug_check_agreement(CollectiveOp::AllGather, &shape, [dim, dim, 1], true);
        self.record_raw(
            CollectiveOp::AllGather,
            crate::stats::quant_wire_bytes(self.size(), shard.rows(), shard.cols()) as u64,
        );
        let parts = self.exchange_quant(shard.clone());
        self.note_time(CollectiveOp::AllGather, t0);
        parts
    }

    /// Chunked quantized all-gather: identical result to
    /// [`all_gather_quant`](Self::all_gather_quant), moved as `chunks`
    /// slices of the shard along `dim` (row slices for `dim == 0`, column
    /// slices for `dim == 1`). Like the dense chunked wrappers this does no
    /// compute; the overlap loops use [`begin_chunked_quant`] directly.
    ///
    /// [`begin_chunked_quant`]: Self::begin_chunked_quant
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not 0 or 1, or the shard extent along `dim` is
    /// not divisible by `chunks`.
    #[must_use]
    pub fn all_gather_quant_chunked(
        &self,
        shard: &QuantizedMatrix,
        dim: usize,
        chunks: usize,
    ) -> Vec<QuantizedMatrix> {
        if chunks == 1 {
            return self.all_gather_quant(shard, dim);
        }
        assert!(dim < 2, "quantized shards are rank-2; dim must be 0 or 1");
        let extent = if dim == 0 { shard.rows() } else { shard.cols() };
        assert!(
            extent.is_multiple_of(chunks),
            "quantized all-gather dim {dim} of size {extent} not divisible by {chunks} chunks"
        );
        let step = extent / chunks;
        let shape = [shard.rows(), shard.cols()];
        let wire = crate::stats::quant_wire_bytes(self.size(), shard.rows(), shard.cols());
        let mut ex = self.begin_chunked_quant(
            CollectiveOp::AllGather,
            &shape,
            [dim, dim],
            chunks,
            wire,
        );
        let slice = |c: usize| -> QuantizedMatrix {
            if dim == 0 {
                shard.slice_rows(c * step, step)
            } else {
                shard.slice_cols(c * step, step)
            }
        };
        let mut per_chunk: Vec<Vec<QuantizedMatrix>> = Vec::with_capacity(chunks);
        ex.post(slice(0));
        for c in 1..chunks {
            per_chunk.push(ex.collect());
            ex.post(slice(c));
        }
        per_chunk.push(ex.collect());
        // Reassemble each rank's shard from its chunks in ascending order:
        // values and scales land exactly where the monolithic gather put
        // them (row chunks share one scale vector; column chunks partition
        // it).
        (0..self.size())
            .map(|r| {
                let parts: Vec<&QuantizedMatrix> = per_chunk.iter().map(|c| &c[r]).collect();
                if dim == 0 {
                    QuantizedMatrix::concat_rows(&parts)
                } else {
                    QuantizedMatrix::concat_cols(&parts)
                }
            })
            .collect()
    }

    /// Opens a chunked collective over quantized payloads — the quantized
    /// twin of [`begin_chunked`](Self::begin_chunked), used by the
    /// weight-gathered overlap loops to stream int8 shard slices while the
    /// previous slice's fused dequant-einsum runs.
    ///
    /// `wire_bytes` is the exact byte volume the monolithic quantized
    /// collective would charge (values + scales), recorded once regardless
    /// of chunking. Row-chunked streams resend the full scale vector with
    /// every chunk; that duplication is a simulation artifact (a real
    /// implementation ships the scales once) and is deliberately not
    /// charged.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero, or (debug builds) if members disagree.
    #[must_use]
    pub fn begin_chunked_quant(
        &self,
        op: CollectiveOp,
        shape: &[usize],
        dims: [usize; 2],
        chunks: usize,
        wire_bytes: usize,
    ) -> ChunkedQuantExchange<'_> {
        self.fault_point();
        assert!(chunks > 0, "chunked collective requires at least one chunk");
        self.debug_check_agreement(op, shape, [dims[0], dims[1], chunks], true);
        self.record_raw(op, wire_bytes as u64);
        ChunkedQuantExchange { group: self, op, chunks, posted: 0, collected: 0, solo: None }
    }

    /// Opens a chunked collective: the member will [`post`] `chunks` chunks
    /// and [`collect`] each one, interleaving its own compute between the
    /// two — the Looped CollectiveEinsum step API (Section 3.5). All
    /// members must open the same op with the same shape, dims and chunk
    /// count (checked in debug builds like any other collective).
    ///
    /// `shape`/`dims` describe the *whole* logical collective (as the
    /// monolithic call would), and `elems` is the volume the monolithic
    /// call would record, so the traffic ledger sees one call of identical
    /// byte volume regardless of chunking.
    ///
    /// [`post`]: ChunkedExchange::post
    /// [`collect`]: ChunkedExchange::collect
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero, or (debug builds) if members disagree.
    #[must_use]
    pub fn begin_chunked(
        &self,
        op: CollectiveOp,
        shape: &[usize],
        dims: [usize; 2],
        chunks: usize,
        elems: usize,
    ) -> ChunkedExchange<'_> {
        self.fault_point();
        assert!(chunks > 0, "chunked collective requires at least one chunk");
        self.debug_check_agreement(op, shape, [dims[0], dims[1], chunks], false);
        self.record(op, elems);
        ChunkedExchange { group: self, op, chunks, posted: 0, collected: 0, solo: None }
    }

    /// Chunked all-gather: identical result to [`all_gather`], moved as
    /// `chunks` slices of `shard` along `dim` so a caller using
    /// [`begin_chunked`] directly can compute on chunk `i-1` while chunk `i`
    /// is in flight. This convenience wrapper does no compute; it exists for
    /// conformance tests and as the reassembly reference.
    ///
    /// [`all_gather`]: CommGroup::all_gather
    /// [`begin_chunked`]: CommGroup::begin_chunked
    ///
    /// # Panics
    ///
    /// Panics if `shard.dim(dim)` is not divisible by `chunks`.
    #[must_use]
    pub fn all_gather_chunked(&self, shard: &Tensor, dim: usize, chunks: usize) -> Tensor {
        if chunks == 1 {
            return self.all_gather(shard, dim);
        }
        let extent = shard.dim(dim);
        assert!(
            extent.is_multiple_of(chunks),
            "all-gather dim {dim} of size {extent} not divisible by {chunks} chunks"
        );
        let step = extent / chunks;
        let out_elems = shard.numel() * self.size();
        let mut ex =
            self.begin_chunked(CollectiveOp::AllGather, shard.shape(), [dim, dim], chunks, out_elems);
        let mut per_chunk: Vec<Vec<Tensor>> = Vec::with_capacity(chunks);
        ex.post(shard.slice(dim, 0, step));
        for c in 1..chunks {
            per_chunk.push(ex.collect());
            ex.post(shard.slice(dim, c * step, step));
        }
        per_chunk.push(ex.collect());
        // Reassemble rank-major, chunk-inner: rank r's full shard is its
        // chunks in ascending order, exactly as the monolithic concat sees it.
        let mut pieces: Vec<&Tensor> = Vec::with_capacity(self.size() * chunks);
        for r in 0..self.size() {
            for chunk in &per_chunk {
                pieces.push(&chunk[r]);
            }
        }
        Tensor::concat(&pieces, dim)
    }

    /// Chunked reduce-scatter: identical result to [`reduce_scatter`],
    /// exchanged as `chunks` pieces. Chunk `c` carries slice `c` of every
    /// destination's scatter part (not a contiguous run of `dim`), so each
    /// collected chunk is immediately reducible to a piece of this member's
    /// output.
    ///
    /// [`reduce_scatter`]: CommGroup::reduce_scatter
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `size() * chunks`.
    #[must_use]
    pub fn reduce_scatter_chunked(&self, input: &Tensor, dim: usize, chunks: usize) -> Tensor {
        if chunks == 1 {
            return self.reduce_scatter(input, dim);
        }
        let k = self.size();
        let extent = input.dim(dim);
        assert!(
            extent.is_multiple_of(k),
            "reduce-scatter dim {dim} of size {extent} not divisible by group size {k}"
        );
        let part = extent / k;
        assert!(
            part.is_multiple_of(chunks),
            "reduce-scatter part of size {part} not divisible by {chunks} chunks"
        );
        let step = part / chunks;
        let mut ex = self.begin_chunked(
            CollectiveOp::ReduceScatter,
            input.shape(),
            [dim, dim],
            chunks,
            input.numel(),
        );
        let post_chunk = |c: usize| -> Tensor {
            let slices: Vec<Tensor> =
                (0..k).map(|j| input.slice(dim, j * part + c * step, step)).collect();
            let refs: Vec<&Tensor> = slices.iter().collect();
            Tensor::concat(&refs, dim)
        };
        // Summing rank-ascending keeps the per-element accumulation chain
        // identical to the monolithic reduce, hence bit-identical results.
        let reduce_mine = |parts: Vec<Tensor>| -> Tensor {
            let mut sum = parts[0].slice(dim, self.rank * step, step);
            for p in &parts[1..] {
                sum = &sum + &p.slice(dim, self.rank * step, step);
            }
            sum
        };
        let mut mine: Vec<Tensor> = Vec::with_capacity(chunks);
        ex.post(post_chunk(0));
        for c in 1..chunks {
            mine.push(reduce_mine(ex.collect()));
            ex.post(post_chunk(c));
        }
        mine.push(reduce_mine(ex.collect()));
        let refs: Vec<&Tensor> = mine.iter().collect();
        Tensor::concat(&refs, dim)
    }

    /// Chunked all-reduce: identical result to [`all_reduce`], exchanged as
    /// `chunks` contiguous slices along `chunk_dim`.
    ///
    /// [`all_reduce`]: CommGroup::all_reduce
    ///
    /// # Panics
    ///
    /// Panics if `chunk_dim` is not divisible by `chunks`.
    #[must_use]
    pub fn all_reduce_chunked(&self, input: &Tensor, chunk_dim: usize, chunks: usize) -> Tensor {
        if chunks == 1 {
            return self.all_reduce(input);
        }
        let extent = input.dim(chunk_dim);
        assert!(
            extent.is_multiple_of(chunks),
            "all-reduce chunk dim {chunk_dim} of size {extent} not divisible by {chunks} chunks"
        );
        let step = extent / chunks;
        let mut ex = self.begin_chunked(
            CollectiveOp::AllReduce,
            input.shape(),
            [chunk_dim, chunk_dim],
            chunks,
            input.numel() * 2,
        );
        let reduce = |parts: Vec<Tensor>| -> Tensor {
            let mut sum = parts[0].clone();
            for p in &parts[1..] {
                sum = &sum + p;
            }
            sum
        };
        let mut out: Vec<Tensor> = Vec::with_capacity(chunks);
        ex.post(input.slice(chunk_dim, 0, step));
        for c in 1..chunks {
            out.push(reduce(ex.collect()));
            ex.post(input.slice(chunk_dim, c * step, step));
        }
        out.push(reduce(ex.collect()));
        let refs: Vec<&Tensor> = out.iter().collect();
        Tensor::concat(&refs, chunk_dim)
    }

    /// Chunked all-to-all: identical result to [`all_to_all`], exchanged as
    /// `chunks` slices along `concat_dim` (which must differ from
    /// `split_dim`, as it does in the multiquery-attention reshard this
    /// primitive exists for).
    ///
    /// [`all_to_all`]: CommGroup::all_to_all
    ///
    /// # Panics
    ///
    /// Panics if the dims coincide or either divisibility fails.
    #[must_use]
    pub fn all_to_all_chunked(
        &self,
        input: &Tensor,
        split_dim: usize,
        concat_dim: usize,
        chunks: usize,
    ) -> Tensor {
        if chunks == 1 {
            return self.all_to_all(input, split_dim, concat_dim);
        }
        assert_ne!(split_dim, concat_dim, "chunked all-to-all needs distinct dims");
        let k = self.size();
        assert!(
            input.dim(split_dim).is_multiple_of(k),
            "all-to-all split dim {split_dim} of size {} not divisible by group size {k}",
            input.dim(split_dim)
        );
        let extent = input.dim(concat_dim);
        assert!(
            extent.is_multiple_of(chunks),
            "all-to-all concat dim {concat_dim} of size {extent} not divisible by {chunks} chunks"
        );
        let step = extent / chunks;
        let part = input.dim(split_dim) / k;
        let mut ex = self.begin_chunked(
            CollectiveOp::AllToAll,
            input.shape(),
            [split_dim, concat_dim],
            chunks,
            input.numel(),
        );
        let mut per_chunk: Vec<Vec<Tensor>> = Vec::with_capacity(chunks);
        let slice_mine = |parts: Vec<Tensor>| -> Vec<Tensor> {
            parts.iter().map(|p| p.slice(split_dim, self.rank * part, part)).collect()
        };
        ex.post(input.slice(concat_dim, 0, step));
        for c in 1..chunks {
            per_chunk.push(slice_mine(ex.collect()));
            ex.post(input.slice(concat_dim, c * step, step));
        }
        per_chunk.push(slice_mine(ex.collect()));
        // Rank-major, chunk-inner: rank r's full contribution is its chunks
        // in ascending order, matching the monolithic rank-order concat.
        let mut pieces: Vec<&Tensor> = Vec::with_capacity(k * chunks);
        for r in 0..k {
            for chunk in &per_chunk {
                pieces.push(&chunk[r]);
            }
        }
        Tensor::concat(&pieces, concat_dim)
    }
}

/// An in-flight chunked collective opened by [`CommGroup::begin_chunked`]:
/// the async step API of the Looped CollectiveEinsum. The caller alternates
/// [`post`](ChunkedExchange::post) (non-blocking deposit of chunk `i`) with
/// its own compute on chunk `i-1`, then [`collect`](ChunkedExchange::collect)
/// (blocking receipt) — hiding communication behind the einsum it feeds:
///
/// ```text
/// post(0); for c in 1..C { compute(c-1); collect(c-1) -> post(c) } ...
/// ```
///
/// Slot discipline: the mailbox holds one chunk per member, so every chunk
/// must be collected before the next is posted (asserted). The two-phase
/// barrier inside `collect` guarantees no member can race ahead and
/// overwrite a slot a peer is still reading.
///
/// # Examples
///
/// ```
/// use esti_collectives::{CollectiveOp, CommGroup};
/// use esti_tensor::Tensor;
///
/// let mut solo = CommGroup::create(1);
/// let g = solo.remove(0);
/// let t = Tensor::ones(vec![2]);
/// let mut ex = g.begin_chunked(CollectiveOp::AllGather, t.shape(), [0, 0], 2, 4);
/// ex.post(t.slice(0, 0, 1));
/// // ... compute on the previous chunk here ...
/// let first = ex.collect();
/// assert_eq!(first[0].data(), &[1.0]);
/// ex.post(t.slice(0, 1, 1));
/// let _ = ex.collect();
/// ```
pub struct ChunkedExchange<'g> {
    group: &'g CommGroup,
    op: CollectiveOp,
    chunks: usize,
    posted: usize,
    collected: usize,
    /// Size-1 groups have no peers to exchange with; the posted chunk
    /// parks here until collected.
    solo: Option<Tensor>,
}

impl ChunkedExchange<'_> {
    /// Deposits the next chunk without blocking.
    ///
    /// # Panics
    ///
    /// Panics if all chunks were already posted or the previous chunk has
    /// not been collected yet.
    pub fn post(&mut self, chunk: Tensor) {
        assert!(self.posted < self.chunks, "all {} chunks already posted", self.chunks);
        assert_eq!(
            self.posted, self.collected,
            "collect the in-flight chunk before posting the next (one mailbox slot per member)"
        );
        let t0 = Instant::now();
        if self.group.size() == 1 {
            self.solo = Some(chunk);
        } else {
            *self.group.shared.slots[self.group.rank]
                .lock()
                .unwrap_or_else(PoisonError::into_inner) =
                Some(Payload::Dense(chunk));
        }
        self.group.note_post(self.op, t0);
        self.posted += 1;
    }

    /// Blocks until every member has posted its current chunk and returns
    /// the deposits in rank order. The blocking time is what the collective
    /// time ledger charges — compute done between `post` and `collect` is
    /// exactly the hidden communication.
    ///
    /// # Panics
    ///
    /// Panics if no chunk is in flight.
    // Vetted: "posted chunk present"/"peer deposited" are slot-discipline
    // invariants of the post/collect protocol, asserted above; violation is
    // a caller bug, not a runtime fault. Faults surface via barrier_wait.
    #[allow(clippy::expect_used)]
    pub fn collect(&mut self) -> Vec<Tensor> {
        assert_eq!(self.posted, self.collected + 1, "no posted chunk to collect");
        self.collected += 1;
        let t0 = Instant::now();
        let parts = if self.group.size() == 1 {
            vec![self.solo.take().expect("posted chunk present")]
        } else {
            self.group.barrier_wait();
            let all: Vec<Tensor> = self
                .group
                .shared
                .slots
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .expect("peer deposited")
                        .into_dense()
                })
                .collect();
            self.group.barrier_wait();
            all
        };
        self.group.note_time(self.op, t0);
        parts
    }

    /// Total number of chunks in this collective.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Chunks not yet collected.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.chunks - self.collected
    }
}

/// An in-flight chunked collective over quantized payloads, opened by
/// [`CommGroup::begin_chunked_quant`]: identical post/collect protocol and
/// slot discipline to [`ChunkedExchange`], but each chunk is an int8 shard
/// slice in wire format (values + scales) rather than a dense tensor —
/// the transport the weight-gathered overlap loops stream while running
/// the fused scale-on-arrival einsum on the previous slice.
pub struct ChunkedQuantExchange<'g> {
    group: &'g CommGroup,
    op: CollectiveOp,
    chunks: usize,
    posted: usize,
    collected: usize,
    /// Size-1 groups have no peers to exchange with; the posted chunk
    /// parks here until collected.
    solo: Option<QuantizedMatrix>,
}

impl ChunkedQuantExchange<'_> {
    /// Deposits the next quantized chunk without blocking.
    ///
    /// # Panics
    ///
    /// Panics if all chunks were already posted or the previous chunk has
    /// not been collected yet.
    pub fn post(&mut self, chunk: QuantizedMatrix) {
        assert!(self.posted < self.chunks, "all {} chunks already posted", self.chunks);
        assert_eq!(
            self.posted, self.collected,
            "collect the in-flight chunk before posting the next (one mailbox slot per member)"
        );
        let t0 = Instant::now();
        if self.group.size() == 1 {
            self.solo = Some(chunk);
        } else {
            *self.group.shared.slots[self.group.rank]
                .lock()
                .unwrap_or_else(PoisonError::into_inner) =
                Some(Payload::Quant(chunk));
        }
        self.group.note_post(self.op, t0);
        self.posted += 1;
    }

    /// Blocks until every member has posted its current chunk and returns
    /// the deposits in rank order.
    ///
    /// # Panics
    ///
    /// Panics if no chunk is in flight.
    // Vetted: "posted chunk present"/"peer deposited" are slot-discipline
    // invariants of the post/collect protocol, asserted above; violation is
    // a caller bug, not a runtime fault. Faults surface via barrier_wait.
    #[allow(clippy::expect_used)]
    pub fn collect(&mut self) -> Vec<QuantizedMatrix> {
        assert_eq!(self.posted, self.collected + 1, "no posted chunk to collect");
        self.collected += 1;
        let t0 = Instant::now();
        let parts = if self.group.size() == 1 {
            vec![self.solo.take().expect("posted chunk present")]
        } else {
            self.group.barrier_wait();
            let all: Vec<QuantizedMatrix> = self
                .group
                .shared
                .slots
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .expect("peer deposited")
                        .into_quant()
                })
                .collect();
            self.group.barrier_wait();
            all
        };
        self.group.note_time(self.op, t0);
        parts
    }

    /// Total number of chunks in this collective.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Chunks not yet collected.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.chunks - self.collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f(rank, group)` on one thread per group member and collects
    /// results in rank order.
    fn run_group<T: Send>(
        size: usize,
        f: impl Fn(usize, &CommGroup) -> T + Sync,
    ) -> Vec<T> {
        let members = CommGroup::create(size);
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .enumerate()
                .map(|(r, m)| s.spawn(move || f(r, &m)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("member panicked")).collect()
        })
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let outs = run_group(4, |r, g| {
            let shard = Tensor::full(vec![1, 3], r as f32);
            g.all_gather(&shard, 0)
        });
        for out in outs {
            assert_eq!(out.shape(), &[4, 3]);
            for r in 0..4 {
                assert_eq!(out.at(&[r, 0]), r as f32);
            }
        }
    }

    #[test]
    fn all_gather_along_inner_dim() {
        let outs = run_group(2, |r, g| {
            let shard = Tensor::full(vec![2, 2], r as f32);
            g.all_gather(&shard, 1)
        });
        assert_eq!(outs[0].shape(), &[2, 4]);
        assert_eq!(outs[0].data(), &[0., 0., 1., 1., 0., 0., 1., 1.]);
    }

    #[test]
    fn reduce_scatter_sums_and_shards() {
        let outs = run_group(2, |r, g| {
            // member r holds [r, r, r, r] over dim of size 4
            let input = Tensor::full(vec![4], r as f32 + 1.0);
            g.reduce_scatter(&input, 0)
        });
        // sum = [3,3,3,3]; rank 0 gets first half, rank 1 second
        assert_eq!(outs[0].shape(), &[2]);
        assert_eq!(outs[0].data(), &[3.0, 3.0]);
        assert_eq!(outs[1].data(), &[3.0, 3.0]);
    }

    #[test]
    fn all_reduce_replicates_sum() {
        let outs = run_group(3, |r, g| {
            let input = Tensor::from_vec(vec![2], vec![r as f32, 1.0]);
            g.all_reduce(&input)
        });
        for out in outs {
            assert_eq!(out.data(), &[3.0, 3.0]);
        }
    }

    #[test]
    fn all_reduce_equals_reduce_scatter_then_all_gather() {
        let inputs: Vec<Tensor> = (0..4)
            .map(|r| Tensor::from_vec(vec![8], (0..8).map(|i| (r * 8 + i) as f32).collect()))
            .collect();
        let via_ar = {
            let inputs = inputs.clone();
            run_group(4, move |r, g| g.all_reduce(&inputs[r]))
        };
        let via_rs_ag = run_group(4, move |r, g| {
            let rs = g.reduce_scatter(&inputs[r], 0);
            g.all_gather(&rs, 0)
        });
        for (a, b) in via_ar.iter().zip(&via_rs_ag) {
            assert!(a.approx_eq(b, 1e-6));
        }
    }

    #[test]
    fn all_to_all_transposes_sharding() {
        // Member r holds a [2, K] tensor with value 10*r + column.
        let outs = run_group(2, |r, g| {
            let input = Tensor::from_vec(
                vec![2, 2],
                vec![10.0 * r as f32, 10.0 * r as f32 + 1.0, 10.0 * r as f32, 10.0 * r as f32 + 1.0],
            );
            g.all_to_all(&input, 1, 0)
        });
        // Rank 0 receives column 0 from both peers, stacked along dim 0.
        assert_eq!(outs[0].shape(), &[4, 1]);
        assert_eq!(outs[0].data(), &[0.0, 0.0, 10.0, 10.0]);
        assert_eq!(outs[1].data(), &[1.0, 1.0, 11.0, 11.0]);
    }

    #[test]
    fn all_to_all_roundtrip_restores_layout() {
        // B-shard -> H-shard -> B-shard returns the original tensor.
        let outs = run_group(2, |r, g| {
            let original = Tensor::from_vec(
                vec![2, 4],
                (0..8).map(|i| (r * 8 + i) as f32).collect(),
            );
            let resharded = g.all_to_all(&original, 1, 0); // [4, 2]
            let back = g.all_to_all(&resharded, 0, 1); // [2, 4]
            (original, back)
        });
        for (original, back) in outs {
            assert!(original.approx_eq(&back, 0.0));
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_leak_state() {
        let outs = run_group(3, |r, g| {
            let mut acc = Tensor::full(vec![3], r as f32);
            for _ in 0..50 {
                acc = g.all_reduce(&acc.scale(0.5));
            }
            acc
        });
        for (a, b) in outs.iter().zip(&outs[1..]) {
            assert!(a.approx_eq(b, 1e-4));
        }
    }

    #[test]
    fn traffic_stats_recorded_once_per_call() {
        let stats = TrafficStats::new();
        let members = CommGroup::create_with_stats(2, Arc::clone(&stats));
        std::thread::scope(|s| {
            for m in members {
                s.spawn(move || {
                    let t = Tensor::ones(vec![4]);
                    let _ = m.all_gather(&t, 0);
                    let _ = m.reduce_scatter(&Tensor::ones(vec![8]), 0);
                });
            }
        });
        // all-gather output = 8 elements * 2 bytes; reduce-scatter input = 8 * 2.
        assert_eq!(stats.bytes(CollectiveOp::AllGather), 16);
        assert_eq!(stats.bytes(CollectiveOp::ReduceScatter), 16);
        assert_eq!(stats.calls(CollectiveOp::AllGather), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_collective_ops_fail_fast() {
        // One member all-gathers while the other all-reduces: a schedule
        // divergence that would deadlock or mis-shard in release. The debug
        // agreement check makes every member panic instead.
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_gather(&Tensor::ones(vec![2]), 0);
            });
            let _ = g0.all_reduce(&Tensor::ones(vec![2]));
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_shapes_fail_fast() {
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_reduce(&Tensor::ones(vec![3]));
            });
            let _ = g0.all_reduce(&Tensor::ones(vec![2]));
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_dims_fail_fast() {
        // Same op and shape but different gather dimension.
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_gather(&Tensor::ones(vec![2, 2]), 1);
            });
            let _ = g0.all_gather(&Tensor::ones(vec![2, 2]), 0);
        });
    }

    #[test]
    fn chunked_collectives_match_monolithic() {
        for size in [1usize, 2, 4] {
            for chunks in [1usize, 2, 4] {
                let outs = run_group(size, |r, g| {
                    let input = Tensor::from_vec(
                        vec![4, 16],
                        (0..64).map(|i| (r * 100 + i) as f32 * 0.25).collect(),
                    );
                    let ag = g.all_gather_chunked(&input, 0, chunks);
                    let ag_ref = g.all_gather(&input, 0);
                    let rs = g.reduce_scatter_chunked(&input, 1, chunks);
                    let rs_ref = g.reduce_scatter(&input, 1);
                    let ar = g.all_reduce_chunked(&input, 1, chunks);
                    let ar_ref = g.all_reduce(&input);
                    let a2a = g.all_to_all_chunked(&input, 0, 1, chunks);
                    let a2a_ref = g.all_to_all(&input, 0, 1);
                    [(ag, ag_ref), (rs, rs_ref), (ar, ar_ref), (a2a, a2a_ref)]
                });
                for pairs in outs {
                    for (chunked, monolithic) in pairs {
                        assert_eq!(
                            chunked.max_abs_diff(&monolithic),
                            0.0,
                            "size {size} chunks {chunks}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_exchange_pipelines_compute_between_post_and_collect() {
        // The step API: post chunk c, compute on chunk c-1, collect chunk
        // c-1 — an all-gather-fed accumulation done chunk by chunk.
        let chunks = 4;
        let outs = run_group(3, |r, g| {
            let shard = Tensor::from_vec(vec![8], (0..8).map(|i| (r * 8 + i) as f32).collect());
            let reference = g.all_gather(&shard, 0);
            let mut ex =
                g.begin_chunked(CollectiveOp::AllGather, shard.shape(), [0, 0], chunks, 24);
            let mut acc = 0.0f32;
            let mut gathered: Vec<Vec<Tensor>> = Vec::new();
            ex.post(shard.slice(0, 0, 2));
            for c in 1..chunks {
                // "compute" on the previous chunk while this one is in flight
                if let Some(prev) = gathered.last() {
                    acc += prev.iter().map(|t| t.data().iter().sum::<f32>()).sum::<f32>();
                }
                gathered.push(ex.collect());
                ex.post(shard.slice(0, c * 2, 2));
            }
            acc += gathered.last().expect("chunk").iter()
                .map(|t| t.data().iter().sum::<f32>()).sum::<f32>();
            gathered.push(ex.collect());
            assert_eq!(ex.remaining(), 0);
            (reference, gathered, acc)
        });
        for (reference, gathered, _) in outs {
            let mut pieces = Vec::new();
            for r in 0..3 {
                for chunk in &gathered {
                    pieces.push(chunk[r].clone());
                }
            }
            let refs: Vec<&Tensor> = pieces.iter().collect();
            assert_eq!(Tensor::concat(&refs, 0).max_abs_diff(&reference), 0.0);
        }
    }

    #[test]
    fn collective_times_accumulate_blocking_time() {
        let stats = TrafficStats::new();
        let members = CommGroup::create_with_stats(2, Arc::clone(&stats));
        let times = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .enumerate()
                .map(|(r, m)| {
                    s.spawn(move || {
                        if r == 0 {
                            // Make rank 1 demonstrably block in the barrier.
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        let _ = m.all_reduce(&Tensor::ones(vec![4]));
                        m.times()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("member")).collect::<Vec<_>>()
        });
        assert!(
            times[1].nanos(CollectiveOp::AllReduce) >= 1_000_000,
            "rank 1 blocked {} ns, expected >= 1ms",
            times[1].nanos(CollectiveOp::AllReduce)
        );
        assert_eq!(times[1].nanos(CollectiveOp::AllGather), 0);
        assert!(stats.nanos(CollectiveOp::AllReduce) > 0);
        assert_eq!(times[1].total_nanos(), times[1].nanos(CollectiveOp::AllReduce));
        let mut merged = times[0];
        merged.merge(&times[1]);
        assert_eq!(
            merged.total_nanos(),
            times[0].total_nanos() + times[1].total_nanos()
        );
    }

    #[test]
    fn chunked_traffic_recorded_once_with_monolithic_volume() {
        let stats = TrafficStats::new();
        let members = CommGroup::create_with_stats(2, Arc::clone(&stats));
        std::thread::scope(|s| {
            for m in members {
                s.spawn(move || {
                    let t = Tensor::ones(vec![4]);
                    let _ = m.all_gather_chunked(&t, 0, 2);
                    let _ = m.reduce_scatter_chunked(&Tensor::ones(vec![8]), 0, 4);
                });
            }
        });
        // Identical to the monolithic ledger: AG output 8 elems * 2 bytes,
        // RS input 8 elems * 2 bytes, one call each.
        assert_eq!(stats.bytes(CollectiveOp::AllGather), 16);
        assert_eq!(stats.bytes(CollectiveOp::ReduceScatter), 16);
        assert_eq!(stats.calls(CollectiveOp::AllGather), 1);
        assert_eq!(stats.calls(CollectiveOp::ReduceScatter), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_chunk_counts_fail_fast() {
        // Same op, shape and dims but different chunk counts: the mailbox
        // protocols would desynchronize, so the agreement check must fire.
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_reduce_chunked(&Tensor::ones(vec![4]), 0, 4);
            });
            let _ = g0.all_reduce_chunked(&Tensor::ones(vec![4]), 0, 2);
        });
    }

    #[test]
    fn chunk_posts_and_overhead_counters_tracked() {
        let stats = TrafficStats::new();
        let members = CommGroup::create_with_stats(2, Arc::clone(&stats));
        let groups: Vec<_> = run_group_members(members, |_, g| {
            let t = Tensor::ones(vec![8]);
            let _ = g.all_reduce_chunked(&t, 0, 4);
            g
        });
        // One 4-chunk call: four posts in the shared ledger (rank 0 only),
        // and every member accumulated nonzero launch time.
        assert_eq!(stats.calls(CollectiveOp::AllReduce), 1);
        assert_eq!(stats.chunk_posts(CollectiveOp::AllReduce), 4);
        for g in &groups {
            assert!(g.post_nanos() > 0, "post overhead accounted");
            g.note_fold_nanos(7);
            assert_eq!(g.fold_nanos(), 7);
            g.reset_times();
            assert_eq!(g.post_nanos(), 0);
            assert_eq!(g.fold_nanos(), 0);
        }
    }

    /// Like `run_group` but takes ownership of pre-built members (so tests
    /// can share a stats ledger) and returns them in rank order.
    fn run_group_members<T: Send>(
        members: Vec<CommGroup>,
        f: impl Fn(usize, CommGroup) -> T + Sync,
    ) -> Vec<T> {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .enumerate()
                .map(|(r, m)| s.spawn(move || f(r, m)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("member thread"))
                .collect()
        })
    }

    #[test]
    #[should_panic(expected = "collect the in-flight chunk")]
    fn chunked_exchange_enforces_slot_discipline() {
        let mut solo = CommGroup::create(1);
        let g = solo.remove(0);
        let t = Tensor::ones(vec![4]);
        let mut ex = g.begin_chunked(CollectiveOp::AllGather, t.shape(), [0, 0], 2, 8);
        ex.post(t.slice(0, 0, 2));
        ex.post(t.slice(0, 2, 2)); // must collect first
    }

    #[test]
    fn crash_fault_cancels_group_with_peer_crashed() {
        use crate::fault::{CollectiveError, FaultPlan, FaultState, InjectedCrash};
        let members = CommGroup::create(3);
        let state = Arc::new(FaultState::new(FaultPlan::new().crash(1, 0), 3));
        for (chip, m) in members.iter().enumerate() {
            m.arm_faults(Arc::clone(&state), chip);
        }
        let results: Vec<std::thread::Result<Tensor>> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .map(|m| s.spawn(move || m.all_reduce(&Tensor::ones(vec![2]))))
                .collect();
            handles.into_iter().map(std::thread::ScopedJoinHandle::join).collect()
        });
        let crash = results[1].as_ref().expect_err("chip 1 was crashed");
        assert_eq!(crash.downcast_ref::<InjectedCrash>(), Some(&InjectedCrash { chip: 1 }));
        for r in [0, 2] {
            let err = results[r].as_ref().expect_err("peers observe the crash");
            assert_eq!(
                err.downcast_ref::<CollectiveError>(),
                Some(&CollectiveError::PeerCrashed { rank: 1 }),
                "rank {r}"
            );
        }
    }

    #[test]
    fn stalled_peer_surfaces_timeout_within_deadline() {
        use crate::fault::CollectiveError;
        let members = CommGroup::create(2);
        for m in &members {
            m.set_deadline(Some(Duration::from_millis(40)));
        }
        let t0 = Instant::now();
        let results: Vec<std::thread::Result<Tensor>> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .enumerate()
                .map(|(r, m)| {
                    s.spawn(move || {
                        if r == 1 {
                            // Stalled chip: shows up long after the peer's
                            // deadline. It must then observe the timeout
                            // fate instead of waiting its own full deadline.
                            std::thread::sleep(Duration::from_millis(120));
                        }
                        m.all_reduce(&Tensor::ones(vec![2]))
                    })
                })
                .collect();
            handles.into_iter().map(std::thread::ScopedJoinHandle::join).collect()
        });
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "structured timeout must not degenerate into a long wait"
        );
        for (r, res) in results.iter().enumerate() {
            let err = res.as_ref().expect_err("both sides surface the timeout");
            assert!(
                matches!(err.downcast_ref::<CollectiveError>(), Some(CollectiveError::Timeout { .. })),
                "rank {r}"
            );
        }
    }

    #[test]
    fn delay_fault_is_transparent_to_results() {
        use crate::fault::{FaultPlan, FaultState};
        let members = CommGroup::create(2);
        let plan = FaultPlan::new().delay(0, 0, Duration::from_millis(5));
        let state = Arc::new(FaultState::new(plan, 2));
        for (chip, m) in members.iter().enumerate() {
            m.arm_faults(Arc::clone(&state), chip);
            m.set_deadline(Some(Duration::from_secs(5)));
        }
        let outs: Vec<Tensor> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .enumerate()
                .map(|(r, m)| {
                    s.spawn(move || m.all_reduce(&Tensor::full(vec![2], r as f32 + 1.0)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("delay is not an error")).collect()
        });
        for out in outs {
            assert_eq!(out.data(), &[3.0, 3.0]);
        }
    }

    #[test]
    fn deadline_barrier_matches_blocking_barrier_results() {
        let blocking = run_group(4, |r, g| {
            g.set_deadline(None);
            g.all_gather(&Tensor::full(vec![1, 2], r as f32), 0)
        });
        let deadlined = run_group(4, |r, g| {
            g.set_deadline(Some(Duration::from_secs(30)));
            g.all_gather(&Tensor::full(vec![1, 2], r as f32), 0)
        });
        for (a, b) in blocking.iter().zip(&deadlined) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn reduce_scatter_requires_divisibility() {
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.reduce_scatter(&Tensor::ones(vec![3]), 0);
            });
            let _ = g0.reduce_scatter(&Tensor::ones(vec![3]), 0);
        });
    }
}
