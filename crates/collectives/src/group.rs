//! Mailbox-and-barrier collective groups.

use std::sync::Arc;

use esti_tensor::Tensor;

use crate::stats::{CollectiveOp, TrafficStats};
use crate::sync::{Barrier, Mutex};

/// Logical activation width used for traffic accounting (bf16, Section 2).
const ACT_BYTES: u64 = 2;

/// What one member claims to be doing, deposited before each collective in
/// debug builds so divergent members fail an assertion instead of
/// deadlocking at the barrier or corrupting each other's mailboxes.
#[cfg(all(debug_assertions, not(loom)))]
#[derive(Clone, PartialEq, Debug)]
struct CallMeta {
    /// Index of this call in the member's collective sequence.
    seq: u64,
    op: CollectiveOp,
    shape: Vec<usize>,
    /// Operative dimensions: `[dim, dim]` for gather/scatter/reduce,
    /// `[split_dim, concat_dim]` for all-to-all.
    dims: [usize; 2],
}

struct Shared {
    slots: Vec<Mutex<Option<Tensor>>>,
    barrier: Barrier,
    stats: Option<Arc<TrafficStats>>,
    #[cfg(all(debug_assertions, not(loom)))]
    meta: Vec<Mutex<Option<CallMeta>>>,
}

/// One member's handle to a collective group of simulated chips.
///
/// All members of a group must call the *same* collective with compatible
/// shapes, in the same order — exactly the SPMD discipline of the real
/// system. A group of size 1 degenerates to identity operations.
///
/// # Examples
///
/// ```
/// use esti_collectives::CommGroup;
/// use esti_tensor::Tensor;
///
/// // A group of one: collectives are identities.
/// let mut solo = CommGroup::create(1);
/// let g = solo.remove(0);
/// let t = Tensor::ones(vec![2, 2]);
/// assert_eq!(g.all_reduce(&t), t);
/// assert_eq!(g.all_gather(&t, 0), t);
/// ```
pub struct CommGroup {
    shared: Arc<Shared>,
    rank: usize,
    /// Number of collectives this member has issued (debug-build SPMD check).
    #[cfg(all(debug_assertions, not(loom)))]
    calls: std::cell::Cell<u64>,
}

impl std::fmt::Debug for CommGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommGroup")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .finish()
    }
}

impl CommGroup {
    /// Creates a group of `size` members. The returned handles are in rank
    /// order; hand one to each chip thread.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn create(size: usize) -> Vec<CommGroup> {
        CommGroup::create_impl(size, None)
    }

    /// Like [`CommGroup::create`], recording every collective call in
    /// `stats`.
    #[must_use]
    pub fn create_with_stats(size: usize, stats: Arc<TrafficStats>) -> Vec<CommGroup> {
        CommGroup::create_impl(size, Some(stats))
    }

    fn create_impl(size: usize, stats: Option<Arc<TrafficStats>>) -> Vec<CommGroup> {
        assert!(size > 0, "group size must be positive");
        let shared = Arc::new(Shared {
            slots: (0..size).map(|_| Mutex::new(None)).collect(),
            barrier: Barrier::new(size),
            stats,
            #[cfg(all(debug_assertions, not(loom)))]
            meta: (0..size).map(|_| Mutex::new(None)).collect(),
        });
        (0..size)
            .map(|rank| CommGroup {
                shared: Arc::clone(&shared),
                rank,
                #[cfg(all(debug_assertions, not(loom)))]
                calls: std::cell::Cell::new(0),
            })
            .collect()
    }

    /// This member's rank within the group.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of members in the group.
    #[must_use]
    pub fn size(&self) -> usize {
        self.shared.slots.len()
    }

    /// Core exchange: every member deposits a tensor and receives clones of
    /// everyone's deposits, in rank order. Two barrier phases ensure no
    /// member races ahead and overwrites a slot that others still read.
    fn exchange(&self, t: Tensor) -> Vec<Tensor> {
        if self.size() == 1 {
            return vec![t];
        }
        *self.shared.slots[self.rank].lock().expect("slot poisoned") = Some(t);
        self.shared.barrier.wait();
        let all: Vec<Tensor> = self
            .shared
            .slots
            .iter()
            .map(|s| s.lock().expect("slot poisoned").clone().expect("peer deposited"))
            .collect();
        self.shared.barrier.wait();
        all
    }

    /// Debug-build SPMD conformance check: every member deposits what it is
    /// about to do; after a barrier, each asserts all deposits agree. A
    /// member that diverged (wrong op, wrong shape, out-of-order call) fails
    /// fast with a message naming both sides, instead of deadlocking at the
    /// exchange barrier or silently mixing shards. Every member performs the
    /// identical comparison, so on disagreement *all* members panic and no
    /// thread is left waiting on a barrier that will never fill.
    ///
    /// Disabled under `--cfg loom` to keep the model-checked state space at
    /// the size of the production protocol.
    #[cfg(all(debug_assertions, not(loom)))]
    fn debug_check_agreement(&self, op: CollectiveOp, shape: &[usize], dims: [usize; 2]) {
        if self.size() == 1 {
            return;
        }
        let seq = self.calls.get();
        self.calls.set(seq + 1);
        let mine = CallMeta { seq, op, shape: shape.to_vec(), dims };
        *self.shared.meta[self.rank].lock().expect("meta poisoned") = Some(mine.clone());
        self.shared.barrier.wait();
        for (peer, slot) in self.shared.meta.iter().enumerate() {
            let theirs = slot
                .lock()
                .expect("meta poisoned")
                .clone()
                .expect("peer deposited call metadata");
            assert!(
                mine == theirs,
                "SPMD violation: rank {} issued {mine:?} but rank {peer} issued {theirs:?} — \
                 all members of a group must execute the same collective sequence",
                self.rank,
            );
        }
        self.shared.barrier.wait();
    }

    #[cfg(not(all(debug_assertions, not(loom))))]
    fn debug_check_agreement(&self, _op: CollectiveOp, _shape: &[usize], _dims: [usize; 2]) {}

    fn record(&self, op: CollectiveOp, elems: usize) {
        if self.rank == 0 {
            if let Some(stats) = &self.shared.stats {
                stats.record(op, elems as u64 * ACT_BYTES);
            }
        }
    }

    /// all-gather(`dim`): concatenates every member's `shard` along `dim`
    /// in rank order, replicating the result on all members.
    ///
    /// Traffic ledger: per-chip *output* bytes (Appendix A.1).
    ///
    /// # Panics
    ///
    /// Panics if members pass incompatible shapes.
    #[must_use]
    pub fn all_gather(&self, shard: &Tensor, dim: usize) -> Tensor {
        self.debug_check_agreement(CollectiveOp::AllGather, shard.shape(), [dim, dim]);
        let parts = self.exchange(shard.clone());
        let refs: Vec<&Tensor> = parts.iter().collect();
        let out = Tensor::concat(&refs, dim);
        self.record(CollectiveOp::AllGather, out.numel());
        out
    }

    /// reduce-scatter(`dim`): sums every member's `input` element-wise, then
    /// returns to each member its rank's slice of the sum along `dim`.
    ///
    /// Traffic ledger: per-chip *input* bytes (Appendix A.1).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by the group size or shapes differ.
    #[must_use]
    pub fn reduce_scatter(&self, input: &Tensor, dim: usize) -> Tensor {
        self.debug_check_agreement(CollectiveOp::ReduceScatter, input.shape(), [dim, dim]);
        self.record(CollectiveOp::ReduceScatter, input.numel());
        if self.size() == 1 {
            return input.clone();
        }
        let parts = self.exchange(input.clone());
        let mut sum = parts[0].clone();
        for p in &parts[1..] {
            sum = &sum + p;
        }
        let k = self.size();
        assert!(
            sum.dim(dim).is_multiple_of(k),
            "reduce-scatter dim {dim} of size {} not divisible by group size {k}",
            sum.dim(dim)
        );
        let part = sum.dim(dim) / k;
        sum.slice(dim, self.rank * part, part)
    }

    /// all-reduce: sums every member's `input` element-wise, replicating the
    /// result. Equivalent to reduce-scatter followed by all-gather
    /// (Section 3.1) and charged as both in the traffic ledger.
    #[must_use]
    pub fn all_reduce(&self, input: &Tensor) -> Tensor {
        self.debug_check_agreement(CollectiveOp::AllReduce, input.shape(), [0, 0]);
        self.record(CollectiveOp::AllReduce, input.numel() * 2);
        if self.size() == 1 {
            return input.clone();
        }
        let parts = self.exchange(input.clone());
        let mut sum = parts[0].clone();
        for p in &parts[1..] {
            sum = &sum + p;
        }
        sum
    }

    /// all-to-all: splits every member's `input` into `size()` slices along
    /// `split_dim`; member `r` receives slice `r` from everyone,
    /// concatenated along `concat_dim` in rank order. This is the resharding
    /// primitive that moves multiquery attention from head-sharded to
    /// batch-sharded layout (Section 3.3, Figure 5b).
    ///
    /// Traffic ledger: per-chip payload bytes (the full input; the `1/K`
    /// that stays local is excluded by the analytic model, not the ledger).
    ///
    /// # Panics
    ///
    /// Panics if `split_dim` is not divisible by the group size.
    #[must_use]
    pub fn all_to_all(&self, input: &Tensor, split_dim: usize, concat_dim: usize) -> Tensor {
        self.debug_check_agreement(CollectiveOp::AllToAll, input.shape(), [split_dim, concat_dim]);
        self.record(CollectiveOp::AllToAll, input.numel());
        if self.size() == 1 {
            return input.clone();
        }
        let k = self.size();
        assert!(
            input.dim(split_dim).is_multiple_of(k),
            "all-to-all split dim {split_dim} of size {} not divisible by group size {k}",
            input.dim(split_dim)
        );
        let parts = self.exchange(input.clone());
        let part = input.dim(split_dim) / k;
        let mine: Vec<Tensor> = parts
            .iter()
            .map(|p| p.slice(split_dim, self.rank * part, part))
            .collect();
        let refs: Vec<&Tensor> = mine.iter().collect();
        Tensor::concat(&refs, concat_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f(rank, group)` on one thread per group member and collects
    /// results in rank order.
    fn run_group<T: Send>(
        size: usize,
        f: impl Fn(usize, &CommGroup) -> T + Sync,
    ) -> Vec<T> {
        let members = CommGroup::create(size);
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .enumerate()
                .map(|(r, m)| s.spawn(move || f(r, &m)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("member panicked")).collect()
        })
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let outs = run_group(4, |r, g| {
            let shard = Tensor::full(vec![1, 3], r as f32);
            g.all_gather(&shard, 0)
        });
        for out in outs {
            assert_eq!(out.shape(), &[4, 3]);
            for r in 0..4 {
                assert_eq!(out.at(&[r, 0]), r as f32);
            }
        }
    }

    #[test]
    fn all_gather_along_inner_dim() {
        let outs = run_group(2, |r, g| {
            let shard = Tensor::full(vec![2, 2], r as f32);
            g.all_gather(&shard, 1)
        });
        assert_eq!(outs[0].shape(), &[2, 4]);
        assert_eq!(outs[0].data(), &[0., 0., 1., 1., 0., 0., 1., 1.]);
    }

    #[test]
    fn reduce_scatter_sums_and_shards() {
        let outs = run_group(2, |r, g| {
            // member r holds [r, r, r, r] over dim of size 4
            let input = Tensor::full(vec![4], r as f32 + 1.0);
            g.reduce_scatter(&input, 0)
        });
        // sum = [3,3,3,3]; rank 0 gets first half, rank 1 second
        assert_eq!(outs[0].shape(), &[2]);
        assert_eq!(outs[0].data(), &[3.0, 3.0]);
        assert_eq!(outs[1].data(), &[3.0, 3.0]);
    }

    #[test]
    fn all_reduce_replicates_sum() {
        let outs = run_group(3, |r, g| {
            let input = Tensor::from_vec(vec![2], vec![r as f32, 1.0]);
            g.all_reduce(&input)
        });
        for out in outs {
            assert_eq!(out.data(), &[3.0, 3.0]);
        }
    }

    #[test]
    fn all_reduce_equals_reduce_scatter_then_all_gather() {
        let inputs: Vec<Tensor> = (0..4)
            .map(|r| Tensor::from_vec(vec![8], (0..8).map(|i| (r * 8 + i) as f32).collect()))
            .collect();
        let via_ar = {
            let inputs = inputs.clone();
            run_group(4, move |r, g| g.all_reduce(&inputs[r]))
        };
        let via_rs_ag = run_group(4, move |r, g| {
            let rs = g.reduce_scatter(&inputs[r], 0);
            g.all_gather(&rs, 0)
        });
        for (a, b) in via_ar.iter().zip(&via_rs_ag) {
            assert!(a.approx_eq(b, 1e-6));
        }
    }

    #[test]
    fn all_to_all_transposes_sharding() {
        // Member r holds a [2, K] tensor with value 10*r + column.
        let outs = run_group(2, |r, g| {
            let input = Tensor::from_vec(
                vec![2, 2],
                vec![10.0 * r as f32, 10.0 * r as f32 + 1.0, 10.0 * r as f32, 10.0 * r as f32 + 1.0],
            );
            g.all_to_all(&input, 1, 0)
        });
        // Rank 0 receives column 0 from both peers, stacked along dim 0.
        assert_eq!(outs[0].shape(), &[4, 1]);
        assert_eq!(outs[0].data(), &[0.0, 0.0, 10.0, 10.0]);
        assert_eq!(outs[1].data(), &[1.0, 1.0, 11.0, 11.0]);
    }

    #[test]
    fn all_to_all_roundtrip_restores_layout() {
        // B-shard -> H-shard -> B-shard returns the original tensor.
        let outs = run_group(2, |r, g| {
            let original = Tensor::from_vec(
                vec![2, 4],
                (0..8).map(|i| (r * 8 + i) as f32).collect(),
            );
            let resharded = g.all_to_all(&original, 1, 0); // [4, 2]
            let back = g.all_to_all(&resharded, 0, 1); // [2, 4]
            (original, back)
        });
        for (original, back) in outs {
            assert!(original.approx_eq(&back, 0.0));
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_leak_state() {
        let outs = run_group(3, |r, g| {
            let mut acc = Tensor::full(vec![3], r as f32);
            for _ in 0..50 {
                acc = g.all_reduce(&acc.scale(0.5));
            }
            acc
        });
        for (a, b) in outs.iter().zip(&outs[1..]) {
            assert!(a.approx_eq(b, 1e-4));
        }
    }

    #[test]
    fn traffic_stats_recorded_once_per_call() {
        let stats = TrafficStats::new();
        let members = CommGroup::create_with_stats(2, Arc::clone(&stats));
        std::thread::scope(|s| {
            for m in members {
                s.spawn(move || {
                    let t = Tensor::ones(vec![4]);
                    let _ = m.all_gather(&t, 0);
                    let _ = m.reduce_scatter(&Tensor::ones(vec![8]), 0);
                });
            }
        });
        // all-gather output = 8 elements * 2 bytes; reduce-scatter input = 8 * 2.
        assert_eq!(stats.bytes(CollectiveOp::AllGather), 16);
        assert_eq!(stats.bytes(CollectiveOp::ReduceScatter), 16);
        assert_eq!(stats.calls(CollectiveOp::AllGather), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_collective_ops_fail_fast() {
        // One member all-gathers while the other all-reduces: a schedule
        // divergence that would deadlock or mis-shard in release. The debug
        // agreement check makes every member panic instead.
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_gather(&Tensor::ones(vec![2]), 0);
            });
            let _ = g0.all_reduce(&Tensor::ones(vec![2]));
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_shapes_fail_fast() {
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_reduce(&Tensor::ones(vec![3]));
            });
            let _ = g0.all_reduce(&Tensor::ones(vec![2]));
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SPMD violation")]
    fn mismatched_dims_fail_fast() {
        // Same op and shape but different gather dimension.
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.all_gather(&Tensor::ones(vec![2, 2]), 1);
            });
            let _ = g0.all_gather(&Tensor::ones(vec![2, 2]), 0);
        });
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn reduce_scatter_requires_divisibility() {
        let mut g = CommGroup::create(2);
        let g1 = g.remove(1);
        let g0 = g.remove(0);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = g1.reduce_scatter(&Tensor::ones(vec![3]), 0);
            });
            let _ = g0.reduce_scatter(&Tensor::ones(vec![3]), 0);
        });
    }
}
