//! Property tests for the Looped CollectiveEinsum building blocks: every
//! chunked collective must equal its monolithic counterpart *bit-for-bit*
//! for arbitrary chunk counts dividing the tensor, across 2/4/8-member
//! groups. This is the invariant that lets the overlapped engine swap a
//! monolithic collective for a chunked pipeline without changing results.

use esti_collectives::{CollectiveOp, CommGroup, TrafficStats};
use esti_tensor::{QuantizedMatrix, Tensor};
use proptest::prelude::*;
use std::sync::Arc;

/// Runs `f(rank, group)` on one thread per member, collecting rank-order
/// results.
fn run_group<T: Send>(size: usize, f: impl Fn(usize, &CommGroup) -> T + Sync) -> Vec<T> {
    let members = CommGroup::create(size);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = members
            .into_iter()
            .enumerate()
            .map(|(r, m)| s.spawn(move || f(r, &m)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("member panicked")).collect()
    })
}

/// Deterministic per-rank payload with plenty of distinct values.
fn payload(rank: usize, shape: Vec<usize>, seed: u64) -> Tensor {
    let numel: usize = shape.iter().product();
    let data: Vec<f32> = (0..numel)
        .map(|i| {
            let v = (seed as usize).wrapping_mul(31).wrapping_add(rank * 97).wrapping_add(i * 13);
            (v % 251) as f32 * 0.125 - 15.0
        })
        .collect();
    Tensor::from_vec(shape, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chunked_all_gather_matches_monolithic(
        size in prop::sample::select(vec![2usize, 4, 8]),
        chunks in 1usize..5,
        mult in 1usize..4,
        seed in 0u64..1000,
    ) {
        let outs = run_group(size, |r, g| {
            let shard = payload(r, vec![chunks * mult, 3], seed);
            (g.all_gather_chunked(&shard, 0, chunks), g.all_gather(&shard, 0))
        });
        for (chunked, monolithic) in outs {
            prop_assert_eq!(chunked.max_abs_diff(&monolithic), 0.0);
        }
    }

    #[test]
    fn chunked_reduce_scatter_matches_monolithic(
        size in prop::sample::select(vec![2usize, 4, 8]),
        chunks in 1usize..5,
        mult in 1usize..4,
        seed in 0u64..1000,
    ) {
        let outs = run_group(size, |r, g| {
            let input = payload(r, vec![size * chunks * mult, 2], seed);
            (g.reduce_scatter_chunked(&input, 0, chunks), g.reduce_scatter(&input, 0))
        });
        for (chunked, monolithic) in outs {
            prop_assert_eq!(chunked.max_abs_diff(&monolithic), 0.0);
        }
    }

    #[test]
    fn chunked_all_reduce_matches_monolithic(
        size in prop::sample::select(vec![2usize, 4, 8]),
        chunks in 1usize..5,
        mult in 1usize..4,
        seed in 0u64..1000,
    ) {
        let outs = run_group(size, |r, g| {
            let input = payload(r, vec![2, chunks * mult], seed);
            (g.all_reduce_chunked(&input, 1, chunks), g.all_reduce(&input))
        });
        for (chunked, monolithic) in outs {
            prop_assert_eq!(chunked.max_abs_diff(&monolithic), 0.0);
        }
    }

    #[test]
    fn chunked_all_to_all_matches_monolithic(
        size in prop::sample::select(vec![2usize, 4, 8]),
        chunks in 1usize..5,
        mult in 1usize..4,
        seed in 0u64..1000,
    ) {
        let outs = run_group(size, |r, g| {
            let input = payload(r, vec![size * 2, chunks * mult], seed);
            (g.all_to_all_chunked(&input, 0, 1, chunks), g.all_to_all(&input, 0, 1))
        });
        for (chunked, monolithic) in outs {
            prop_assert_eq!(chunked.max_abs_diff(&monolithic), 0.0);
        }
    }

    #[test]
    fn quant_all_gather_round_trips_shards_exactly(
        size in prop::sample::select(vec![1usize, 2, 4, 8]),
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1000,
    ) {
        // Every rank must receive every peer's shard with values AND scales
        // bit-identical to the sender's local quantization.
        let outs = run_group(size, |r, g| {
            let q = QuantizedMatrix::quantize(&payload(r, vec![rows, cols], seed));
            let gathered = g.all_gather_quant(&q, 0);
            (q, gathered)
        });
        let locals: Vec<&QuantizedMatrix> = outs.iter().map(|(q, _)| q).collect();
        for (_, gathered) in &outs {
            prop_assert_eq!(gathered.len(), size);
            for (got, want) in gathered.iter().zip(&locals) {
                prop_assert_eq!(got.values(), want.values());
                prop_assert_eq!(got.scales(), want.scales());
            }
        }
    }

    #[test]
    fn quant_chunked_all_gather_matches_monolithic(
        size in prop::sample::select(vec![2usize, 4, 8]),
        chunks in 1usize..5,
        mult in 1usize..4,
        dim in 0usize..2,
        seed in 0u64..1000,
    ) {
        // Chunked transport (row or column slices) must reassemble to the
        // identical quantized shards — values and scales — that the
        // monolithic quantized gather delivers.
        let shape = if dim == 0 { vec![chunks * mult, 3] } else { vec![3, chunks * mult] };
        let outs = run_group(size, |r, g| {
            let q = QuantizedMatrix::quantize(&payload(r, shape.clone(), seed));
            (g.all_gather_quant_chunked(&q, dim, chunks), g.all_gather_quant(&q, dim))
        });
        for (chunked, monolithic) in outs {
            prop_assert_eq!(chunked.len(), monolithic.len());
            for (c, m) in chunked.iter().zip(&monolithic) {
                prop_assert_eq!(c, m);
            }
        }
    }
}

#[test]
fn quant_all_gather_charges_quantized_volume() {
    // The ledger must charge 1 byte per int8 value + 4 per f32 scale —
    // not the dense elements × ACT_BYTES — and record one call no matter
    // the chunk count.
    let stats = TrafficStats::new();
    let members = CommGroup::create_with_stats(4, Arc::clone(&stats));
    std::thread::scope(|s| {
        for m in members {
            s.spawn(move || {
                let q = QuantizedMatrix::quantize(&Tensor::ones(vec![8, 6]));
                let _ = m.all_gather_quant(&q, 1);
                let _ = m.all_gather_quant_chunked(&q, 1, 3);
            });
        }
    });
    // Each call: 4 ranks × (8·6 values × 1 byte + 6 scales × 4 bytes).
    let per_call = 4 * (8 * 6 + 6 * 4) as u64;
    assert_eq!(stats.bytes(CollectiveOp::AllGather), 2 * per_call);
    assert_eq!(stats.calls(CollectiveOp::AllGather), 2);
}
