//! Model-checked interleaving tests for the mailbox-and-barrier protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, which swaps the sync
//! primitives in `esti_collectives::sync` for the `esti-loom` bounded-DFS
//! checker: the tests below then run under *every* explored interleaving of
//! the member threads, and any schedule that panics, returns a wrong
//! result, or deadlocks fails the test with its decision trace.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p esti-collectives --test loom --release
//! ```

#![cfg(loom)]

use esti_collectives::sync::Barrier;
use esti_collectives::CommGroup;
use esti_tensor::Tensor;
use loom::sync::Arc;

/// Split a freshly created 2-member group into its rank-0 and rank-1 handles.
fn pair() -> (CommGroup, CommGroup) {
    let mut members = CommGroup::create(2);
    let g1 = members.remove(1);
    let g0 = members.remove(0);
    (g0, g1)
}

#[test]
fn barrier_two_members_two_generations() {
    // The sense-reversing barrier must stay correct when a fast thread's
    // second wait overlaps a slow thread's first: exactly one leader per
    // generation, under every interleaving.
    loom::model(|| {
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let h = loom::thread::spawn(move || {
            let first = b2.wait();
            let second = b2.wait();
            (first, second)
        });
        let first = b.wait();
        let second = b.wait();
        let (peer_first, peer_second) = h.join().expect("member thread");
        assert!(first != peer_first, "exactly one leader per generation");
        assert!(second != peer_second, "exactly one leader per generation");
    });
}

#[test]
fn all_reduce_two_members_all_interleavings() {
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || g1.all_reduce(&Tensor::full(vec![2], 2.0)));
        let mine = g0.all_reduce(&Tensor::full(vec![2], 1.0));
        let theirs = h.join().expect("member thread");
        assert_eq!(mine.data(), &[3.0, 3.0]);
        assert_eq!(theirs.data(), &[3.0, 3.0]);
    });
}

#[test]
fn all_gather_two_members_all_interleavings() {
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || g1.all_gather(&Tensor::full(vec![1], 1.0), 0));
        let mine = g0.all_gather(&Tensor::full(vec![1], 0.0), 0);
        let theirs = h.join().expect("member thread");
        // Rank order must hold no matter which member deposited first.
        assert_eq!(mine.data(), &[0.0, 1.0]);
        assert_eq!(theirs.data(), &[0.0, 1.0]);
    });
}

#[test]
fn back_to_back_collectives_do_not_cross_generations() {
    // The racy failure mode the two-phase exchange protects against: a fast
    // member starting collective #2 must not overwrite a mailbox slot the
    // slow member still reads for collective #1. all_reduce then all_gather
    // exercises both barrier phases twice.
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || {
            let sum = g1.all_reduce(&Tensor::full(vec![1], 2.0));
            g1.all_gather(&sum, 0)
        });
        let sum = g0.all_reduce(&Tensor::full(vec![1], 1.0));
        let mine = g0.all_gather(&sum, 0);
        let theirs = h.join().expect("member thread");
        assert_eq!(mine.data(), &[3.0, 3.0]);
        assert_eq!(theirs.data(), &[3.0, 3.0]);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn missing_member_is_detected_as_deadlock() {
    // A 2-member group where only one member ever calls the collective:
    // the protocol (correctly) blocks forever at the barrier, and the model
    // checker must report that as a deadlock rather than hang.
    loom::model(|| {
        let (g0, _g1) = pair();
        let _ = g0.all_reduce(&Tensor::full(vec![1], 1.0));
    });
}
