//! Model-checked interleaving tests for the mailbox-and-barrier protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, which swaps the sync
//! primitives in `esti_collectives::sync` for the `esti-loom` bounded-DFS
//! checker: the tests below then run under *every* explored interleaving of
//! the member threads, and any schedule that panics, returns a wrong
//! result, or deadlocks fails the test with its decision trace.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p esti-collectives --test loom --release
//! ```

#![cfg(loom)]

use std::time::Duration;

use esti_collectives::sync::Barrier;
use esti_collectives::{CollectiveError, CollectiveOp, CommGroup};
use esti_tensor::Tensor;
use loom::sync::Arc;

/// Split a freshly created 2-member group into its rank-0 and rank-1 handles.
fn pair() -> (CommGroup, CommGroup) {
    let mut members = CommGroup::create(2);
    let g1 = members.remove(1);
    let g0 = members.remove(0);
    (g0, g1)
}

#[test]
fn barrier_two_members_two_generations() {
    // The sense-reversing barrier must stay correct when a fast thread's
    // second wait overlaps a slow thread's first: exactly one leader per
    // generation, under every interleaving.
    loom::model(|| {
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let h = loom::thread::spawn(move || {
            let first = b2.wait();
            let second = b2.wait();
            (first, second)
        });
        let first = b.wait();
        let second = b.wait();
        let (peer_first, peer_second) = h.join().expect("member thread");
        assert!(first != peer_first, "exactly one leader per generation");
        assert!(second != peer_second, "exactly one leader per generation");
    });
}

#[test]
fn all_reduce_two_members_all_interleavings() {
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || g1.all_reduce(&Tensor::full(vec![2], 2.0)));
        let mine = g0.all_reduce(&Tensor::full(vec![2], 1.0));
        let theirs = h.join().expect("member thread");
        assert_eq!(mine.data(), &[3.0, 3.0]);
        assert_eq!(theirs.data(), &[3.0, 3.0]);
    });
}

#[test]
fn all_gather_two_members_all_interleavings() {
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || g1.all_gather(&Tensor::full(vec![1], 1.0), 0));
        let mine = g0.all_gather(&Tensor::full(vec![1], 0.0), 0);
        let theirs = h.join().expect("member thread");
        // Rank order must hold no matter which member deposited first.
        assert_eq!(mine.data(), &[0.0, 1.0]);
        assert_eq!(theirs.data(), &[0.0, 1.0]);
    });
}

#[test]
fn back_to_back_collectives_do_not_cross_generations() {
    // The racy failure mode the two-phase exchange protects against: a fast
    // member starting collective #2 must not overwrite a mailbox slot the
    // slow member still reads for collective #1. all_reduce then all_gather
    // exercises both barrier phases twice.
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || {
            let sum = g1.all_reduce(&Tensor::full(vec![1], 2.0));
            g1.all_gather(&sum, 0)
        });
        let sum = g0.all_reduce(&Tensor::full(vec![1], 1.0));
        let mine = g0.all_gather(&sum, 0);
        let theirs = h.join().expect("member thread");
        assert_eq!(mine.data(), &[3.0, 3.0]);
        assert_eq!(theirs.data(), &[3.0, 3.0]);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn missing_member_is_detected_as_deadlock() {
    // A 2-member group where only one member ever calls the collective:
    // the protocol (correctly) blocks forever at the barrier, and the model
    // checker must report that as a deadlock rather than hang.
    loom::model(|| {
        let (g0, _g1) = pair();
        let _ = g0.all_reduce(&Tensor::full(vec![1], 1.0));
    });
}

#[test]
fn missing_member_with_deadline_times_out_cleanly() {
    // Same missing-member scenario, but with a deadline armed: instead of
    // the deadlock above, the waiter must surface a structured Timeout
    // under every interleaving. (Under the model checker the deadline
    // "expires" exactly at quiescence — the schedule where a real timeout
    // would fire.)
    loom::model(|| {
        let b = Barrier::new(2);
        let res = b.wait_deadline(Some(Duration::from_millis(10)));
        assert!(
            matches!(res, Err(CollectiveError::Timeout { .. })),
            "expected structured timeout, got {res:?}"
        );
        // The timed-out waiter marked the whole barrier dead: a late peer
        // must observe the same structured error, not re-enter the wait.
        let late = b.wait_deadline(Some(Duration::from_millis(10)));
        assert!(matches!(late, Err(CollectiveError::Timeout { .. })));
    });
}

#[test]
fn timed_wait_still_completes_when_all_members_arrive() {
    // A deadline must be invisible on the fault-free path: both members
    // arrive, the barrier releases with exactly one leader, and no
    // interleaving manufactures a spurious timeout.
    loom::model(|| {
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let h = loom::thread::spawn(move || {
            b2.wait_deadline(Some(Duration::from_secs(1))).expect("fault-free wait")
        });
        let mine = b.wait_deadline(Some(Duration::from_secs(1))).expect("fault-free wait");
        let theirs = h.join().expect("member thread");
        assert!(mine != theirs, "exactly one leader per generation");
    });
}

#[test]
fn cancel_wakes_blocked_waiter_with_peer_crashed() {
    // A peer crash must reach a member already blocked inside the barrier
    // (and one arriving after the cancellation) as PeerCrashed naming the
    // dead chip, under every interleaving of cancel vs. wait.
    loom::model(|| {
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let h = loom::thread::spawn(move || b2.wait_deadline(None));
        b.cancel(7);
        let res = h.join().expect("waiter thread returns, not hangs");
        assert_eq!(res, Err(CollectiveError::PeerCrashed { rank: 7 }));
        assert_eq!(b.wait_deadline(None), Err(CollectiveError::PeerCrashed { rank: 7 }));
    });
}

/// Drive one member's side of a 2-chunk chunked all-gather through the raw
/// post/collect step API, asserting the rank-ordered contents of each
/// collected chunk. `lo`/`hi` are this member's two chunk values.
fn chunked_member(g: &CommGroup, lo: f32, hi: f32) {
    let mut ex = g.begin_chunked(CollectiveOp::AllGather, &[2], [0, 0], 2, 4);
    ex.post(Tensor::full(vec![1], lo));
    let first = ex.collect();
    // Rank order must hold for every chunk, no matter who deposited first.
    assert_eq!(first[0].data(), &[0.0]);
    assert_eq!(first[1].data(), &[10.0]);
    ex.post(Tensor::full(vec![1], hi));
    let second = ex.collect();
    assert_eq!(second[0].data(), &[1.0]);
    assert_eq!(second[1].data(), &[11.0]);
    assert_eq!(ex.remaining(), 0);
}

#[test]
fn chunked_exchange_post_collect_all_interleavings() {
    // The double-buffer hazard of the Looped CollectiveEinsum step API: a
    // fast member that finishes `collect` for chunk 0 immediately posts
    // chunk 1 into its *same* mailbox slot. Only the second barrier phase
    // inside `collect` keeps that overwrite from racing a slow peer that is
    // still reading chunk 0. Model-check the full post/collect/post/collect
    // cycle: every interleaving must deliver both chunks of both members in
    // rank order — any slot overwrite would surface as a wrong value, any
    // lost wakeup as a deadlock.
    loom::model(|| {
        let (g0, g1) = pair();
        let h = loom::thread::spawn(move || chunked_member(&g1, 10.0, 11.0));
        chunked_member(&g0, 0.0, 1.0);
        h.join().expect("member thread");
    });
}
