//! A dependency-aware transfer scheduler over bandwidth-limited links.
//!
//! A collective is expressed as a DAG of *transfers*: each transfer moves a
//! number of bytes across one directed link and may depend on earlier
//! transfers (a chip can only forward a chunk after receiving it). Links
//! serve transfers one at a time in ready order (FIFO per link), which
//! models a store-and-forward ring schedule faithfully enough to validate
//! the closed-form costs of Appendix A.1.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use esti_hal::Seconds;

/// Identifier of a directed link registered with [`DagSim::add_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Identifier of a transfer registered with [`DagSim::add_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(pub usize);

#[derive(Debug, Clone)]
struct Transfer {
    link: LinkId,
    bytes: f64,
    deps: Vec<TransferId>,
    unmet: usize,
    ready: Seconds,
    finish: Option<Seconds>,
    dependents: Vec<TransferId>,
}

/// Min-heap entry: (ready time, id); earliest-ready-first.
#[derive(Debug, PartialEq)]
struct Pending {
    ready: Seconds,
    id: usize,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; break ties by id for determinism.
        other
            .ready
            .partial_cmp(&self.ready)
            .unwrap_or(Ordering::Equal)
            .then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The transfer-DAG simulator.
///
/// # Examples
///
/// ```
/// use esti_netsim::DagSim;
///
/// let mut sim = DagSim::new();
/// let link = sim.add_link(100.0); // 100 bytes/s
/// let a = sim.add_transfer(link, 50.0, &[]);
/// let b = sim.add_transfer(link, 50.0, &[a]);
/// let makespan = sim.run();
/// assert_eq!(makespan, 1.0); // two sequential half-second transfers
/// assert_eq!(sim.finish_time(b), Some(1.0));
/// ```
#[derive(Debug, Default)]
pub struct DagSim {
    link_bandwidth: Vec<f64>,
    link_free: Vec<Seconds>,
    transfers: Vec<Transfer>,
    completed: usize,
}

impl DagSim {
    /// Creates an empty simulator.
    #[must_use]
    pub fn new() -> Self {
        DagSim::default()
    }

    /// Registers a directed link with the given bandwidth in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive.
    pub fn add_link(&mut self, bandwidth: f64) -> LinkId {
        assert!(bandwidth > 0.0, "link bandwidth must be positive");
        self.link_bandwidth.push(bandwidth);
        self.link_free.push(0.0);
        LinkId(self.link_bandwidth.len() - 1)
    }

    /// Registers a transfer of `bytes` over `link` that may start only after
    /// every transfer in `deps` has finished.
    ///
    /// # Panics
    ///
    /// Panics if `link` or any dependency id is unknown, or `bytes` is
    /// negative.
    pub fn add_transfer(&mut self, link: LinkId, bytes: f64, deps: &[TransferId]) -> TransferId {
        assert!(link.0 < self.link_bandwidth.len(), "unknown link {link:?}");
        assert!(bytes >= 0.0, "transfer bytes must be non-negative");
        let id = TransferId(self.transfers.len());
        for &d in deps {
            assert!(d.0 < self.transfers.len(), "dependency {d:?} not yet registered");
        }
        self.transfers.push(Transfer {
            link,
            bytes,
            deps: deps.to_vec(),
            unmet: deps.len(),
            ready: 0.0,
            finish: None,
            dependents: Vec::new(),
        });
        for &d in deps {
            self.transfers[d.0].dependents.push(id);
        }
        id
    }

    /// Number of transfers registered.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        self.transfers.len()
    }

    /// Runs the simulation to completion and returns the makespan (the
    /// latest finish time, or `0.0` with no transfers).
    ///
    /// Deterministic: ties are broken by transfer id.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if the dependency graph has a cycle
    /// (impossible through the public API, which only allows backward
    /// dependencies).
    pub fn run(&mut self) -> Seconds {
        assert_eq!(self.completed, 0, "DagSim::run may only be called once");
        let mut heap = BinaryHeap::new();
        for (i, t) in self.transfers.iter().enumerate() {
            if t.unmet == 0 {
                heap.push(Pending { ready: 0.0, id: i });
            }
        }
        let mut makespan: Seconds = 0.0;
        while let Some(Pending { ready, id }) = heap.pop() {
            let link = self.transfers[id].link.0;
            let start = ready.max(self.link_free[link]);
            let finish = start + self.transfers[id].bytes / self.link_bandwidth[link];
            self.link_free[link] = finish;
            self.transfers[id].finish = Some(finish);
            self.completed += 1;
            makespan = makespan.max(finish);
            let dependents = self.transfers[id].dependents.clone();
            for dep in dependents {
                let t = &mut self.transfers[dep.0];
                t.unmet -= 1;
                t.ready = t.ready.max(finish);
                if t.unmet == 0 {
                    heap.push(Pending { ready: t.ready, id: dep.0 });
                }
            }
        }
        assert_eq!(self.completed, self.transfers.len(), "dependency cycle detected");
        makespan
    }

    /// Finish time of a transfer after [`DagSim::run`], or `None` before.
    #[must_use]
    pub fn finish_time(&self, id: TransferId) -> Option<Seconds> {
        self.transfers.get(id.0).and_then(|t| t.finish)
    }

    /// The registered dependency list of a transfer (for tests/debugging).
    #[must_use]
    pub fn deps_of(&self, id: TransferId) -> &[TransferId] {
        &self.transfers[id.0].deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_runs_to_zero() {
        assert_eq!(DagSim::new().run(), 0.0);
    }

    #[test]
    fn sequential_dependency_chain() {
        let mut sim = DagSim::new();
        let l = sim.add_link(10.0);
        let a = sim.add_transfer(l, 10.0, &[]);
        let b = sim.add_transfer(l, 20.0, &[a]);
        let c = sim.add_transfer(l, 10.0, &[b]);
        assert_eq!(sim.run(), 4.0);
        assert_eq!(sim.finish_time(a), Some(1.0));
        assert_eq!(sim.finish_time(b), Some(3.0));
        assert_eq!(sim.finish_time(c), Some(4.0));
    }

    #[test]
    fn independent_links_run_in_parallel() {
        let mut sim = DagSim::new();
        let l1 = sim.add_link(10.0);
        let l2 = sim.add_link(10.0);
        sim.add_transfer(l1, 100.0, &[]);
        sim.add_transfer(l2, 100.0, &[]);
        assert_eq!(sim.run(), 10.0);
    }

    #[test]
    fn shared_link_serializes() {
        let mut sim = DagSim::new();
        let l = sim.add_link(10.0);
        sim.add_transfer(l, 100.0, &[]);
        sim.add_transfer(l, 100.0, &[]);
        assert_eq!(sim.run(), 20.0);
    }

    #[test]
    fn join_waits_for_slowest_parent() {
        let mut sim = DagSim::new();
        let fast = sim.add_link(100.0);
        let slow = sim.add_link(1.0);
        let out = sim.add_link(10.0);
        let a = sim.add_transfer(fast, 100.0, &[]); // 1s
        let b = sim.add_transfer(slow, 5.0, &[]); // 5s
        let c = sim.add_transfer(out, 10.0, &[a, b]); // starts at 5s
        assert_eq!(sim.run(), 6.0);
        assert_eq!(sim.finish_time(c), Some(6.0));
    }

    #[test]
    fn zero_byte_transfer_is_instant_dependency() {
        let mut sim = DagSim::new();
        let l = sim.add_link(10.0);
        let a = sim.add_transfer(l, 0.0, &[]);
        let b = sim.add_transfer(l, 10.0, &[a]);
        assert_eq!(sim.run(), 1.0);
        assert_eq!(sim.finish_time(b), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "may only be called once")]
    fn run_twice_panics() {
        let mut sim = DagSim::new();
        let l = sim.add_link(1.0);
        sim.add_transfer(l, 1.0, &[]);
        sim.run();
        sim.run();
    }

    #[test]
    #[should_panic(expected = "not yet registered")]
    fn forward_dependency_rejected() {
        let mut sim = DagSim::new();
        let l = sim.add_link(1.0);
        sim.add_transfer(l, 1.0, &[TransferId(5)]);
    }
}
