//! Ring-collective schedules on the torus, lowered to transfer DAGs.
//!
//! Every collective is built from bidirectional-ring stages along one torus
//! axis. A single-axis all-gather of per-chip output `D` over a ring of `K`
//! chips splits each chip's shard (`D/K` bytes) into two halves that
//! propagate clockwise and counter-clockwise for `K-1` hops, so each
//! directed link carries `(K-1)·D/(2K)` bytes at half the axis bandwidth —
//! exactly the `D·(K-1)/K / bw` of Appendix A.1.
//!
//! Multi-axis collectives use an *interleaved* schedule: the payload is
//! split into one part per participating axis and each part performs its
//! per-axis stages in a rotated axis order, so all axes' links are busy
//! concurrently. This is the property the paper's cost model assumes when it
//! grants a collective over `k` axes `k` times the single-axis bandwidth
//! (Section 3.1 / Appendix A).

use std::collections::HashMap;

use esti_hal::{ChipSpec, Seconds};
use esti_netsim_axis_order::rotate;
use esti_topology::{Axis, AxisSet, ChipCoord, TorusShape};

use crate::dag::{DagSim, LinkId, TransferId};

/// Tiny private helper module so the rotation logic is unit-testable.
mod esti_netsim_axis_order {
    use esti_topology::Axis;

    /// Rotates `axes` left by `k`, giving each interleaved part its own
    /// stage order.
    pub(crate) fn rotate(axes: &[Axis], k: usize) -> Vec<Axis> {
        let n = axes.len();
        (0..n).map(|i| axes[(i + k) % n]).collect()
    }
}

/// The collective operations of Section 3.1 (Figure A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Broadcast-and-concatenate: per-chip shard grows to the full tensor.
    AllGather,
    /// Sum partial tensors, leaving each chip one shard of the result.
    ReduceScatter,
    /// reduce-scatter followed by all-gather.
    AllReduce,
    /// Re-shard from one tensor dimension to another via pairwise exchange.
    AllToAll,
}

/// Directed torus links for the axes a collective uses.
struct Links {
    /// `(chip_id, axis_index, direction)` → link. direction 0 = +1 ring
    /// neighbour, 1 = -1 ring neighbour.
    map: HashMap<(usize, usize, usize), LinkId>,
}

impl Links {
    fn build(
        sim: &mut DagSim,
        chip: &ChipSpec,
        torus: TorusShape,
        axes: AxisSet,
        straggler: Option<(usize, f64)>,
    ) -> Links {
        let per_direction = chip.axis_bandwidth(1) / 2.0;
        let mut map = HashMap::new();
        for c in torus.chips() {
            let id = torus.chip_id(c);
            let bw = match straggler {
                Some((s, slow)) if s == id => per_direction / slow,
                _ => per_direction,
            };
            for a in axes.iter() {
                if torus.size(a) < 2 {
                    continue;
                }
                for dir in 0..2 {
                    map.insert((id, a.index(), dir), sim.add_link(bw));
                }
            }
        }
        Links { map }
    }

    fn get(&self, torus: TorusShape, c: ChipCoord, axis: Axis, dir: usize) -> LinkId {
        self.map[&(torus.chip_id(c), axis.index(), dir)]
    }
}

/// Per-chip dependency frontier: the transfers whose completion a chip must
/// await before starting its next stage.
type Frontier = Vec<Vec<TransferId>>;

/// Simulates one collective over the chip groups defined by `axes` and
/// returns the makespan in seconds.
///
/// `per_chip_bytes` is the *output* size per chip for an all-gather, the
/// *input* size per chip for a reduce-scatter and all-reduce, and the total
/// per-chip payload for an all-to-all (of which `1/K` stays local).
///
/// # Panics
///
/// Panics if `axes` is empty.
///
/// # Examples
///
/// ```
/// use esti_hal::ChipSpec;
/// use esti_netsim::{simulate_collective, CollectiveKind};
/// use esti_topology::{Axis, AxisSet, TorusShape};
///
/// let t = simulate_collective(
///     &ChipSpec::tpu_v4(),
///     TorusShape::new(4, 1, 1),
///     CollectiveKind::AllReduce,
///     AxisSet::of(&[Axis::X]),
///     1e6,
/// );
/// assert!(t > 0.0);
/// ```
#[must_use]
pub fn simulate_collective(
    chip: &ChipSpec,
    torus: TorusShape,
    kind: CollectiveKind,
    axes: AxisSet,
    per_chip_bytes: f64,
) -> Seconds {
    simulate_impl(chip, torus, kind, axes, per_chip_bytes, None)
}

fn simulate_impl(
    chip: &ChipSpec,
    torus: TorusShape,
    kind: CollectiveKind,
    axes: AxisSet,
    per_chip_bytes: f64,
    straggler: Option<(usize, f64)>,
) -> Seconds {
    assert!(!axes.is_empty(), "collective must involve at least one axis");
    let active: Vec<Axis> = axes.iter().filter(|&a| torus.size(a) > 1).collect();
    if active.is_empty() {
        return 0.0; // group size 1: nothing moves
    }
    match kind {
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
            // A reduce-scatter is the time-reverse of an all-gather with the
            // same per-chip buffer, so one DAG serves both (Appendix A.1).
            let mut sim = DagSim::new();
            let links = Links::build(&mut sim, chip, torus, axes, straggler);
            add_interleaved_gather(&mut sim, &links, torus, &active, per_chip_bytes, None);
            sim.run()
        }
        CollectiveKind::AllReduce => {
            // Reduce-scatter then all-gather, chained through per-chip
            // frontiers so the gather of a part begins as soon as that
            // part's reduction has landed.
            let mut sim = DagSim::new();
            let links = Links::build(&mut sim, chip, torus, axes, straggler);
            let frontier =
                add_interleaved_gather(&mut sim, &links, torus, &active, per_chip_bytes, None);
            add_interleaved_gather(
                &mut sim,
                &links,
                torus,
                &active,
                per_chip_bytes,
                Some(&frontier),
            );
            sim.run()
        }
        CollectiveKind::AllToAll => {
            let mut sim = DagSim::new();
            let links = Links::build(&mut sim, chip, torus, axes, straggler);
            let mut frontier: Option<Frontier> = None;
            // Sequential per-axis exchange stages; each stage re-shuffles the
            // full per-chip payload along one axis.
            for &a in &active {
                let f = add_all_to_all_stage(
                    &mut sim,
                    &links,
                    torus,
                    a,
                    per_chip_bytes,
                    frontier.as_ref(),
                );
                frontier = Some(f);
            }
            sim.run()
        }
    }
}

/// Like [`simulate_collective`], but with one *straggler chip* whose links
/// run at `slowdown` times lower bandwidth — failure/degradation
/// injection. Ring collectives are synchronous pipelines, so a single slow
/// link gates the whole group; this quantifies that sensitivity (and why
/// production pods care about uniform link health).
///
/// # Panics
///
/// Panics if `axes` is empty, `slowdown < 1`, or `straggler` is not a
/// valid chip id.
#[must_use]
pub fn simulate_collective_with_straggler(
    chip: &ChipSpec,
    torus: TorusShape,
    kind: CollectiveKind,
    axes: AxisSet,
    per_chip_bytes: f64,
    straggler: usize,
    slowdown: f64,
) -> Seconds {
    assert!(slowdown >= 1.0, "slowdown must be >= 1");
    assert!(straggler < torus.chip_count(), "straggler chip id out of range");
    simulate_impl(chip, torus, kind, axes, per_chip_bytes, Some((straggler, slowdown)))
}

/// Closed-form cost of the same collective (Appendix A.1), for comparison.
///
/// Uses the exact `(K-1)/K` factor and grants the collective the combined
/// bandwidth of every participating axis, mirroring the interleaved
/// schedule.
#[must_use]
pub fn analytic_time(
    chip: &ChipSpec,
    torus: TorusShape,
    kind: CollectiveKind,
    axes: AxisSet,
    per_chip_bytes: f64,
) -> Seconds {
    let active: Vec<Axis> = axes.iter().filter(|&a| torus.size(a) > 1).collect();
    if active.is_empty() {
        return 0.0;
    }
    let k: f64 = active.iter().map(|&a| torus.size(a) as f64).product();
    let bw = chip.axis_bandwidth(active.len() as u32);
    let ag = per_chip_bytes / bw * (k - 1.0) / k;
    match kind {
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => ag,
        CollectiveKind::AllReduce => 2.0 * ag,
        CollectiveKind::AllToAll => {
            // Min-hop bidirectional ring routing along each axis in turn:
            // per axis of size K_a, each directed link carries ~K_a/8 of the
            // payload, at half the axis bandwidth (see module docs).
            let bw1 = chip.axis_bandwidth(1);
            active
                .iter()
                .map(|&a| {
                    let ka = torus.size(a) as f64;
                    let per_link = if torus.size(a).is_multiple_of(2) {
                        ka / 8.0
                    } else {
                        (ka * ka - 1.0) / (8.0 * ka)
                    };
                    per_chip_bytes * per_link / (bw1 / 2.0)
                })
                .sum()
        }
    }
}

/// Adds the interleaved multi-axis gather DAG. Returns the final per-chip
/// frontier (every chip's last incoming transfers).
fn add_interleaved_gather(
    sim: &mut DagSim,
    links: &Links,
    torus: TorusShape,
    active: &[Axis],
    per_chip_bytes: f64,
    after: Option<&Frontier>,
) -> Frontier {
    let n_parts = active.len();
    let group: f64 = active.iter().map(|&a| torus.size(a) as f64).product();
    let mut final_frontier: Frontier = vec![Vec::new(); torus.chip_count()];
    for part in 0..n_parts {
        let order = rotate(active, part);
        // Initial shard of this part on each chip.
        let mut data_per_chip = per_chip_bytes / n_parts as f64 / group;
        let mut frontier: Frontier = match after {
            Some(f) => f.clone(),
            None => vec![Vec::new(); torus.chip_count()],
        };
        for &axis in &order {
            frontier = add_ring_gather_stage(sim, links, torus, axis, data_per_chip, &frontier);
            data_per_chip *= torus.size(axis) as f64;
        }
        for (acc, f) in final_frontier.iter_mut().zip(frontier) {
            acc.extend(f);
        }
    }
    final_frontier
}

/// One bidirectional-ring all-gather stage along `axis`: every chip's
/// current `data_per_chip` bytes propagate `K-1` hops in both directions as
/// two halves. Returns the per-chip incoming frontier of this stage.
fn add_ring_gather_stage(
    sim: &mut DagSim,
    links: &Links,
    torus: TorusShape,
    axis: Axis,
    data_per_chip: f64,
    after: &Frontier,
) -> Frontier {
    let k = torus.size(axis);
    let mut frontier: Frontier = vec![Vec::new(); torus.chip_count()];
    if k < 2 {
        return after.clone();
    }
    let half = data_per_chip / 2.0;
    for origin in torus.chips() {
        for dir in 0..2usize {
            let mut cur = origin;
            let mut prev: Option<TransferId> = None;
            for _hop in 0..(k - 1) {
                let next = if dir == 0 {
                    torus.ring_next(cur, axis)
                } else {
                    torus.ring_prev(cur, axis)
                };
                let link = links.get(torus, cur, axis, dir);
                let deps: Vec<TransferId> = match prev {
                    Some(p) => vec![p],
                    None => after[torus.chip_id(origin)].clone(),
                };
                let t = sim.add_transfer(link, half, &deps);
                frontier[torus.chip_id(next)].push(t);
                prev = Some(t);
                cur = next;
            }
        }
    }
    frontier
}

/// One all-to-all exchange stage along `axis`: each chip sends a distinct
/// `1/K` slice of its payload to every other ring member via min-hop
/// routing (ties split by source parity).
fn add_all_to_all_stage(
    sim: &mut DagSim,
    links: &Links,
    torus: TorusShape,
    axis: Axis,
    per_chip_bytes: f64,
    after: Option<&Frontier>,
) -> Frontier {
    let k = torus.size(axis);
    let mut frontier: Frontier = vec![Vec::new(); torus.chip_count()];
    if k < 2 {
        if let Some(f) = after {
            return f.clone();
        }
        return frontier;
    }
    let chunk = per_chip_bytes / k as f64;
    for src in torus.chips() {
        let src_pos = src.along(axis);
        // Issue distant destinations first: a multi-hop chunk must clear the
        // first link early or its later hops stall the pipeline.
        let mut dsts: Vec<usize> = (0..k).filter(|&d| d != src_pos).collect();
        dsts.sort_by_key(|&d| {
            let fwd = (d + k - src_pos) % k;
            std::cmp::Reverse(fwd.min(k - fwd))
        });
        for dst_pos in dsts {
            let fwd = (dst_pos + k - src_pos) % k; // hops going +1
            let bwd = k - fwd; // hops going -1
            let dir = if fwd < bwd {
                0
            } else if bwd < fwd {
                1
            } else {
                src_pos % 2 // tie: alternate by source parity
            };
            let hops = fwd.min(bwd);
            let mut cur = src;
            let mut prev: Option<TransferId> = None;
            for _ in 0..hops {
                let next = if dir == 0 {
                    torus.ring_next(cur, axis)
                } else {
                    torus.ring_prev(cur, axis)
                };
                let link = links.get(torus, cur, axis, dir);
                let deps: Vec<TransferId> = match prev {
                    Some(p) => vec![p],
                    None => after.map_or(Vec::new(), |f| f[torus.chip_id(src)].clone()),
                };
                let t = sim.add_transfer(link, chunk, &deps);
                frontier[torus.chip_id(next)].push(t);
                prev = Some(t);
                cur = next;
            }
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpu() -> ChipSpec {
        ChipSpec::tpu_v4()
    }

    fn rel_err(sim: Seconds, analytic: Seconds) -> f64 {
        (sim - analytic).abs() / analytic
    }

    #[test]
    fn single_axis_all_gather_matches_analytic() {
        let chip = tpu();
        for k in [2usize, 3, 4, 8] {
            let torus = TorusShape::new(k, 1, 1);
            let axes = AxisSet::single(Axis::X);
            let d = 8.0 * 1024.0 * 1024.0;
            let sim = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d);
            let ana = analytic_time(&chip, torus, CollectiveKind::AllGather, axes, d);
            assert!(
                rel_err(sim, ana) < 0.02,
                "k={k}: sim {sim} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn reduce_scatter_equals_all_gather_time() {
        let chip = tpu();
        let torus = TorusShape::new(4, 1, 1);
        let axes = AxisSet::single(Axis::X);
        let d = 1e7;
        let ag = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d);
        let rs = simulate_collective(&chip, torus, CollectiveKind::ReduceScatter, axes, d);
        assert_eq!(ag, rs);
    }

    #[test]
    fn all_reduce_is_twice_all_gather() {
        let chip = tpu();
        let torus = TorusShape::new(4, 1, 1);
        let axes = AxisSet::single(Axis::X);
        let d = 1e7;
        let ag = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d);
        let ar = simulate_collective(&chip, torus, CollectiveKind::AllReduce, axes, d);
        assert!(rel_err(ar, 2.0 * ag) < 0.05, "ar {ar} vs 2*ag {}", 2.0 * ag);
    }

    #[test]
    fn two_axis_all_gather_uses_both_axes() {
        let chip = tpu();
        let torus = TorusShape::new(4, 4, 1);
        let axes = AxisSet::of(&[Axis::X, Axis::Y]);
        let d = 1.6e7;
        let sim = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d);
        let ana = analytic_time(&chip, torus, CollectiveKind::AllGather, axes, d);
        // The interleaved schedule leaves some slack in non-final stages;
        // allow 35% but demand clearly-better-than-single-axis time.
        assert!(rel_err(sim, ana) < 0.35, "sim {sim} vs analytic {ana}");
        let single_axis_bound = d / chip.axis_bandwidth(1) * 15.0 / 16.0;
        assert!(sim < single_axis_bound, "interleaving should beat one axis");
    }

    #[test]
    fn three_axis_all_gather_on_cube() {
        let chip = tpu();
        let torus = TorusShape::new(4, 4, 4);
        let axes = AxisSet::all();
        let d = 2.4e7;
        let sim = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d);
        let ana = analytic_time(&chip, torus, CollectiveKind::AllGather, axes, d);
        assert!(rel_err(sim, ana) < 0.4, "sim {sim} vs analytic {ana}");
    }

    #[test]
    fn group_size_one_is_free() {
        let chip = tpu();
        let torus = TorusShape::new(1, 1, 1);
        let t = simulate_collective(
            &chip,
            torus,
            CollectiveKind::AllGather,
            AxisSet::single(Axis::X),
            1e9,
        );
        assert_eq!(t, 0.0);
    }

    #[test]
    fn all_to_all_matches_analytic_even_ring() {
        let chip = tpu();
        for k in [4usize, 8] {
            let torus = TorusShape::new(k, 1, 1);
            let axes = AxisSet::single(Axis::X);
            let d = 4e6;
            let sim = simulate_collective(&chip, torus, CollectiveKind::AllToAll, axes, d);
            let ana = analytic_time(&chip, torus, CollectiveKind::AllToAll, axes, d);
            assert!(rel_err(sim, ana) < 0.15, "k={k}: sim {sim} vs analytic {ana}");
        }
    }

    #[test]
    fn all_to_all_cheaper_than_all_gather_for_same_bytes() {
        // The key fact exploited by batch-sharded multiquery attention:
        // moving D bytes pairwise is ~4x cheaper than replicating D bytes.
        let chip = tpu();
        let torus = TorusShape::new(8, 1, 1);
        let axes = AxisSet::single(Axis::X);
        let d = 4e6;
        let a2a = simulate_collective(&chip, torus, CollectiveKind::AllToAll, axes, d);
        let ag = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d * 8.0);
        assert!(a2a < ag / 2.0, "a2a {a2a} vs ag {ag}");
    }

    #[test]
    fn straggler_gates_the_whole_ring() {
        // One chip at 1/4 link speed: the pipelined ring collective slows
        // toward the straggler's rate, not the average.
        let chip = tpu();
        let torus = TorusShape::new(8, 1, 1);
        let axes = AxisSet::single(Axis::X);
        let d = 8e6;
        let healthy = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, d);
        let degraded = simulate_collective_with_straggler(
            &chip, torus, CollectiveKind::AllGather, axes, d, 3, 4.0,
        );
        assert!(degraded > 2.5 * healthy, "healthy {healthy} vs degraded {degraded}");
        assert!(degraded < 4.5 * healthy, "slowdown bounded by the straggler's rate");
    }

    #[test]
    fn straggler_slowdown_one_is_identity() {
        let chip = tpu();
        let torus = TorusShape::new(4, 1, 1);
        let axes = AxisSet::single(Axis::X);
        let a = simulate_collective(&chip, torus, CollectiveKind::AllReduce, axes, 1e6);
        let b = simulate_collective_with_straggler(&chip, torus, CollectiveKind::AllReduce, axes, 1e6, 0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn time_scales_linearly_with_bytes() {
        let chip = tpu();
        let torus = TorusShape::new(4, 1, 1);
        let axes = AxisSet::single(Axis::X);
        let t1 = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, 1e6);
        let t2 = simulate_collective(&chip, torus, CollectiveKind::AllGather, axes, 2e6);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_gather_time_shrinks_with_more_chips_fixed_output() {
        // Fixed per-chip output D: time approaches D/bw from below as K
        // grows ((K-1)/K factor) — i.e. it *increases* slightly with K.
        let chip = tpu();
        let axes = AxisSet::single(Axis::X);
        let t4 = simulate_collective(&chip, TorusShape::new(4, 1, 1), CollectiveKind::AllGather, axes, 1e7);
        let t8 = simulate_collective(&chip, TorusShape::new(8, 1, 1), CollectiveKind::AllGather, axes, 1e7);
        assert!(t8 > t4);
        assert!(t8 < 1e7 / chip.axis_bandwidth(1) * 1.01);
    }
}
