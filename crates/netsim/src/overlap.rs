//! Looped CollectiveEinsum (Section 3.5): overlapping collective
//! communication with the matmul that consumes it.
//!
//! The paper's single biggest low-level win (~1.4x over the
//! compiler-scheduled baseline) is decomposing an `all-gather + einsum`
//! pair into a software-pipelined loop: as each activation shard arrives
//! over the ring, it is multiplied immediately, so communication hides
//! under compute (Wang et al. 2023).
//!
//! We model both schedules on the [`DagSim`] scheduler by treating the
//! chip's matrix unit as one more bandwidth-limited resource: a matmul
//! chunk is a "transfer" of `flops` over the MXU. The *unfused* schedule
//! computes only after the full gather; the *fused* schedule chains each
//! chunk's compute to its shard's arrival.

use esti_hal::{ChipSpec, Seconds};

use crate::dag::DagSim;

/// One all-gather + einsum pair to schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EinsumSpec {
    /// Ring size: the number of shards (one is already local).
    pub ring: usize,
    /// Bytes of one activation shard arriving over the link.
    pub bytes_per_shard: f64,
    /// Matmul FLOPs consuming one shard.
    pub flops_per_shard: f64,
}

impl EinsumSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is zero or sizes are negative.
    #[must_use]
    pub fn new(ring: usize, bytes_per_shard: f64, flops_per_shard: f64) -> Self {
        assert!(ring > 0, "ring size must be positive");
        assert!(bytes_per_shard >= 0.0 && flops_per_shard >= 0.0, "sizes must be non-negative");
        EinsumSpec { ring, bytes_per_shard, flops_per_shard }
    }

    /// Pure communication time: `K-1` shards over one axis link.
    #[must_use]
    pub fn comm_time(&self, chip: &ChipSpec) -> Seconds {
        (self.ring as f64 - 1.0) * self.bytes_per_shard / chip.axis_bandwidth(1)
    }

    /// Pure compute time at peak: `K` chunks through the MXU.
    #[must_use]
    pub fn compute_time(&self, chip: &ChipSpec) -> Seconds {
        self.ring as f64 * self.flops_per_shard / chip.peak_flops
    }
}

fn schedule(chip: &ChipSpec, spec: &EinsumSpec, fused: bool) -> Seconds {
    let mut sim = DagSim::new();
    let link = sim.add_link(chip.axis_bandwidth(1));
    let mxu = sim.add_link(chip.peak_flops); // "bandwidth" in FLOP/s
    // K-1 sequential shard arrivals on the ring link.
    let mut arrivals = Vec::with_capacity(spec.ring);
    let mut prev = None;
    for _ in 1..spec.ring {
        let deps: Vec<_> = prev.into_iter().collect();
        let t = sim.add_transfer(link, spec.bytes_per_shard, &deps);
        arrivals.push(t);
        prev = Some(t);
    }
    if fused {
        // Local shard computes immediately; each remote chunk computes as
        // soon as it lands (the Looped CollectiveEinsum pipeline).
        let _ = sim.add_transfer(mxu, spec.flops_per_shard, &[]);
        for &a in &arrivals {
            let _ = sim.add_transfer(mxu, spec.flops_per_shard, &[a]);
        }
    } else {
        // Compiler baseline: the einsum starts only after the all-gather
        // completes.
        for _ in 0..spec.ring {
            let _ = sim.add_transfer(mxu, spec.flops_per_shard, &arrivals);
        }
    }
    sim.run()
}

/// Simulated wall-clock of the software-pipelined (fused) schedule.
#[must_use]
pub fn looped_einsum_time(chip: &ChipSpec, spec: &EinsumSpec) -> Seconds {
    schedule(chip, spec, true)
}

/// Simulated wall-clock of the gather-then-compute (unfused) schedule.
#[must_use]
pub fn unfused_einsum_time(chip: &ChipSpec, spec: &EinsumSpec) -> Seconds {
    schedule(chip, spec, false)
}

/// Speedup of the fused over the unfused schedule (>= 1).
#[must_use]
pub fn overlap_speedup(chip: &ChipSpec, spec: &EinsumSpec) -> f64 {
    unfused_einsum_time(chip, spec) / looped_einsum_time(chip, spec)
}

/// Closed-form wall-clock of a fused collective + einsum moved as `chunks`
/// pipelined sub-transfers, with a per-chunk launch cost (barrier round,
/// buffer management, partial fold) that the [`DagSim`] schedules above
/// idealize away.
///
/// The pipeline computes on chunk `i-1` while chunk `i` is in flight: one
/// fill chunk runs unoverlapped, the remaining `k-1` slots advance at the
/// rate of the slower leg, and every chunk pays `overhead` once:
///
/// ```text
/// t(k) = (t_comm + t_comp)/k + (k-1)/k · max(t_comm, t_comp) + k · overhead
/// ```
///
/// `k = 1` degenerates to the monolithic schedule plus one launch
/// (`t_comm + t_comp + overhead`); as `k → ∞` with zero overhead the time
/// approaches `max(t_comm, t_comp)` — full overlap. The `k · overhead`
/// term is what makes over-chunking lose: it grows linearly while the
/// pipeline win saturates, which is exactly the regression the execution
/// planner exists to avoid.
#[must_use]
pub fn chunked_pipeline_time(
    t_comm: Seconds,
    t_comp: Seconds,
    chunks: usize,
    overhead: Seconds,
) -> Seconds {
    let k = chunks.max(1) as f64;
    (t_comm + t_comp) / k + (k - 1.0) / k * t_comm.max(t_comp) + k * overhead
}

/// Closed-form time the executing thread spends *blocked* on transport in
/// the chunked pipeline — the quantity the runtime's collective-time
/// ledger measures (only the `collect` phase counts; compute slotted
/// between `post` and `collect` is hidden). The fill chunk blocks for its
/// full transfer; each later chunk blocks only for the transport not
/// covered by the compute running behind it; every chunk pays `overhead`:
///
/// ```text
/// blocked(k) = t_comm/k + (k-1) · max(0, (t_comm - t_comp)/k) + k · overhead
/// ```
///
/// `k = 1` gives the monolithic blocked time `t_comm + overhead`, so
/// `1 - blocked(k)/blocked(1)` is the model's predicted hidden-comm
/// fraction — the analytic counterpart of the benchmark's measured one.
#[must_use]
pub fn chunked_blocked_time(
    t_comm: Seconds,
    t_comp: Seconds,
    chunks: usize,
    overhead: Seconds,
) -> Seconds {
    let k = chunks.max(1) as f64;
    t_comm / k + (k - 1.0) * ((t_comm - t_comp) / k).max(0.0) + k * overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpu() -> ChipSpec {
        ChipSpec::tpu_v4()
    }

    /// A spec whose communication and compute times are both `t_each`.
    fn balanced(ring: usize, t_each: Seconds) -> EinsumSpec {
        let chip = tpu();
        let bytes = t_each * chip.axis_bandwidth(1) / (ring as f64 - 1.0);
        let flops = t_each * chip.peak_flops / ring as f64;
        EinsumSpec::new(ring, bytes, flops)
    }

    #[test]
    fn fused_never_slower() {
        let chip = tpu();
        for ring in [2usize, 4, 8, 16] {
            for scale in [0.1f64, 1.0, 10.0] {
                let spec = EinsumSpec::new(ring, 1e6 * scale, 1e9);
                assert!(
                    looped_einsum_time(&chip, &spec) <= unfused_einsum_time(&chip, &spec) + 1e-12,
                    "ring {ring} scale {scale}"
                );
            }
        }
    }

    #[test]
    fn unfused_is_sum_fused_is_nearly_max() {
        let chip = tpu();
        let spec = balanced(16, 1e-3);
        let unfused = unfused_einsum_time(&chip, &spec);
        let fused = looped_einsum_time(&chip, &spec);
        assert!((unfused - 2e-3).abs() < 1e-5, "unfused {unfused}");
        // Fused hides all but one pipeline-fill chunk.
        assert!(fused < 1.2e-3, "fused {fused}");
    }

    #[test]
    fn balanced_speedup_approaches_two_with_ring_size() {
        // Perfectly balanced comm/compute: speedup -> 2 as the pipeline
        // amortizes its fill. The paper's overall 1.4x is this effect
        // diluted over non-overlappable work.
        let chip = tpu();
        let s4 = overlap_speedup(&chip, &balanced(4, 1e-3));
        let s32 = overlap_speedup(&chip, &balanced(32, 1e-3));
        assert!(s4 > 1.3 && s4 < 2.0, "ring 4 speedup {s4}");
        assert!(s32 > s4, "speedup must grow with ring size");
        assert!(s32 > 1.8 && s32 < 2.0, "ring 32 speedup {s32}");
    }

    #[test]
    fn lopsided_ratios_limit_the_win() {
        // If compute dwarfs communication (or vice versa), there is little
        // to hide and the speedup tends to 1.
        let chip = tpu();
        let compute_heavy = EinsumSpec::new(8, 1e3, 1e10);
        let comm_heavy = EinsumSpec::new(8, 1e8, 1e3);
        assert!(overlap_speedup(&chip, &compute_heavy) < 1.05);
        assert!(overlap_speedup(&chip, &comm_heavy) < 1.05);
    }

    #[test]
    fn chunked_pipeline_endpoints_and_overhead() {
        let (c, p) = (1e-3, 1e-3);
        // k = 1 is the monolithic schedule plus one launch.
        assert!((chunked_pipeline_time(c, p, 1, 1e-5) - (c + p + 1e-5)).abs() < 1e-12);
        assert!((chunked_blocked_time(c, p, 1, 1e-5) - (c + 1e-5)).abs() < 1e-12);
        // Zero-overhead pipelining approaches max(comm, comp) from above.
        let t64 = chunked_pipeline_time(c, p, 64, 0.0);
        assert!(t64 > c && t64 < 1.1 * c, "t64 {t64}");
        // With overhead, time is eventually increasing in k: over-chunking
        // loses (the planner's reason to exist).
        let ovh = 2e-4;
        assert!(chunked_pipeline_time(c, p, 16, ovh) > chunked_pipeline_time(c, p, 4, ovh));
        // Balanced legs with no overhead hide all but the fill chunk.
        let hidden = 1.0 - chunked_blocked_time(c, p, 4, 0.0) / chunked_blocked_time(c, p, 1, 0.0);
        assert!((hidden - 0.75).abs() < 1e-9, "hidden {hidden}");
        // Compute-starved pipelines (no einsum to hide behind) hide nothing.
        let none = 1.0 - chunked_blocked_time(c, 0.0, 4, 0.0) / chunked_blocked_time(c, 0.0, 1, 0.0);
        assert!(none.abs() < 1e-9, "none {none}");
    }

    #[test]
    fn closed_form_times_match_simulation_endpoints() {
        let chip = tpu();
        let spec = EinsumSpec::new(8, 2e6, 3e9);
        let unfused = unfused_einsum_time(&chip, &spec);
        let expect = spec.comm_time(&chip) + spec.compute_time(&chip);
        assert!((unfused - expect).abs() / expect < 1e-9);
    }
}
