//! Discrete-event simulation of collective communication on a 3D torus.
//!
//! Appendix A.1 of *Efficiently Scaling Transformer Inference* derives the
//! closed-form collective costs the whole paper builds on:
//!
//! > For an all-gather over `K` partitions where each chip produces an
//! > output of size `D`, the communication time is
//! > `T = D/(network bandwidth) · (K-1)/K`.
//!
//! This crate *checks* that algebra instead of trusting it: it schedules the
//! individual chunk transfers of bidirectional-ring collectives onto the
//! torus links of a [`esti_hal::ChipSpec`] and reports the makespan. The
//! analytic model in `esti-core` and this simulator must agree (tests assert
//! they do, up to the ceil-rounding of pipelined ring steps), which gives us
//! confidence that every latency number in the reproduced figures rests on a
//! validated communication model.
//!
//! # Examples
//!
//! ```
//! use esti_hal::ChipSpec;
//! use esti_netsim::{simulate_collective, CollectiveKind};
//! use esti_topology::{Axis, AxisSet, TorusShape};
//!
//! let torus = TorusShape::for_chip_count(64).unwrap();
//! let chip = ChipSpec::tpu_v4();
//! let t = simulate_collective(
//!     &chip,
//!     torus,
//!     CollectiveKind::AllGather,
//!     AxisSet::of(&[Axis::X]),
//!     (1 << 20) as f64, // 1 MiB per-chip output
//! );
//! let analytic = (1u64 << 20) as f64 / chip.axis_bandwidth(1) * 3.0 / 4.0;
//! assert!((t - analytic).abs() / analytic < 0.05);
//! ```

pub mod dag;
pub mod fault;
pub mod overlap;
pub mod schedule;

pub use dag::{DagSim, LinkId, TransferId};
pub use fault::{crash_recovery_cost, LiveRequest, RecoveryCost, RecoveryModel};
pub use overlap::{
    chunked_blocked_time, chunked_pipeline_time, looped_einsum_time, overlap_speedup,
    unfused_einsum_time, EinsumSpec,
};
pub use schedule::{
    analytic_time, simulate_collective, simulate_collective_with_straggler, CollectiveKind,
};
