//! Analytic model of chip-crash recovery cost.
//!
//! The serving runtime recovers from a dead chip by rebuilding the engine
//! and replaying every in-flight request: re-prefill its prompt, then
//! re-derive its already-emitted decode tokens step by step (the slot-mode
//! decode tier steps all live requests together, so the number of replayed
//! steps is the *longest* emitted suffix, not the sum). This module prices
//! that procedure in closed form so the measured recovery accounting in
//! `ServingReport::recovery` can be cross-checked the way measured
//! collective volumes are checked against Appendix A.1.

/// One in-flight request at the moment the engine died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRequest {
    /// Prompt tokens (re-prefilled in full during replay).
    pub prompt_len: usize,
    /// Tokens already emitted, *including* the first token sampled from the
    /// prefill logits — so always ≥ 1 for an admitted request. The
    /// remaining `emitted - 1` tokens were produced by decode steps and
    /// must be re-derived.
    pub emitted: usize,
}

/// Cost knobs of the recovery procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Time to detect the failure: the collective deadline in the worst
    /// case (a stall), ~0 for a crash (cancellation is immediate).
    pub detection_s: f64,
    /// Time to tear down and rebuild the partitioned engine.
    pub rebuild_s: f64,
    /// Prefill throughput, tokens/second (prompt replay).
    pub prefill_tokens_per_s: f64,
    /// Decode-tier step time, seconds/step (emitted-suffix replay).
    pub step_s: f64,
}

/// What a crash at a given moment costs, in the units the serving report
/// measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryCost {
    /// In-flight requests replayed.
    pub requests_replayed: usize,
    /// Prompt tokens re-prefilled.
    pub prefill_tokens_replayed: usize,
    /// Already-emitted decode tokens re-derived.
    pub decode_tokens_replayed: usize,
    /// Decode steps spent re-deriving known tokens: the longest emitted
    /// decode suffix among live requests (slots replay in lockstep).
    pub steps_lost: usize,
    /// End-to-end recovery time: detection + rebuild + re-prefill of every
    /// live prompt + the replayed decode steps.
    pub seconds: f64,
}

/// Prices the recovery procedure for the given set of in-flight requests.
///
/// The count fields are exact (the runtime's measured
/// `ServingReport::recovery` must match them identically); `seconds` is
/// analytic, from the [`RecoveryModel`] knobs.
#[must_use]
pub fn crash_recovery_cost(live: &[LiveRequest], model: &RecoveryModel) -> RecoveryCost {
    let requests_replayed = live.len();
    let prefill_tokens_replayed: usize = live.iter().map(|r| r.prompt_len).sum();
    let decode_tokens_replayed: usize = live.iter().map(|r| r.emitted.saturating_sub(1)).sum();
    let steps_lost = live.iter().map(|r| r.emitted.saturating_sub(1)).max().unwrap_or(0);
    let seconds = model.detection_s
        + model.rebuild_s
        + prefill_tokens_replayed as f64 / model.prefill_tokens_per_s
        + steps_lost as f64 * model.step_s;
    RecoveryCost {
        requests_replayed,
        prefill_tokens_replayed,
        decode_tokens_replayed,
        steps_lost,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecoveryModel {
        RecoveryModel {
            detection_s: 0.1,
            rebuild_s: 0.4,
            prefill_tokens_per_s: 100.0,
            step_s: 0.05,
        }
    }

    #[test]
    fn empty_decode_tier_costs_only_rebuild_and_detection() {
        let c = crash_recovery_cost(&[], &model());
        assert_eq!(c.requests_replayed, 0);
        assert_eq!(c.prefill_tokens_replayed, 0);
        assert_eq!(c.decode_tokens_replayed, 0);
        assert_eq!(c.steps_lost, 0);
        assert!((c.seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_are_sums_and_steps_are_the_max_suffix() {
        let live = [
            LiveRequest { prompt_len: 4, emitted: 3 }, // 2 decode tokens
            LiveRequest { prompt_len: 7, emitted: 1 }, // fresh admission
            LiveRequest { prompt_len: 2, emitted: 6 }, // 5 decode tokens
        ];
        let c = crash_recovery_cost(&live, &model());
        assert_eq!(c.requests_replayed, 3);
        assert_eq!(c.prefill_tokens_replayed, 13);
        assert_eq!(c.decode_tokens_replayed, 7);
        // Slots replay in lockstep: the longest suffix bounds the steps.
        assert_eq!(c.steps_lost, 5);
        let expect = 0.1 + 0.4 + 13.0 / 100.0 + 5.0 * 0.05;
        assert!((c.seconds - expect).abs() < 1e-12);
    }

    #[test]
    fn later_crashes_cost_monotonically_more_replay() {
        let m = model();
        let mut last = -1.0;
        for step in 0..8 {
            let live = [LiveRequest { prompt_len: 5, emitted: 1 + step }];
            let c = crash_recovery_cost(&live, &m);
            assert_eq!(c.decode_tokens_replayed, step);
            assert!(c.seconds > last);
            last = c.seconds;
        }
    }
}
