//! Offline stand-in for `proptest` (1.x API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the property-testing surface the workspace uses: the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, range and
//! [`sample::select`]/[`collection::vec`] strategies, [`Strategy::prop_map`],
//! and the `prop_assert*` macros. Cases are generated from a seeded PRNG
//! (deterministic per test site); there is no shrinking — a failing case
//! panics with the assertion message and its inputs are reproducible by
//! rerunning the test.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a PRNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy {lo}..{hi}");
                    let span = (hi - lo) as u128;
                    (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = f64::from(self.start)
                        + u01 * (f64::from(self.end) - f64::from(self.start));
                    v as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u01 * (self.end - self.start)
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly select one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generate a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the deterministic case PRNG.

    /// Per-`proptest!` configuration (case count only in this stub).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// xoshiro256++ seeded from a test-site hash: deterministic across runs.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from the property's source location (FNV-1a of file:line).
        #[must_use]
        pub fn for_site(file: &str, line: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.as_bytes().iter().copied().chain(line.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests: each `fn` runs its body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_site(file!(), line!());
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::test_runner::Config as ::std::default::Default>::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Property assertion (panics on failure in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property equality assertion (panics on failure in this stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property inequality assertion (panics on failure in this stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Case precondition: skips the remainder of the case when unmet (the
/// [`proptest!`] expansion places each case body inside a loop, so
/// `continue` moves on to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..17,
            b in -4i64..9,
            x in -2.5f32..2.5,
            pick in prop::sample::select(vec![2usize, 4, 8]),
            v in prop::collection::vec(0u8..5, 1..6),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
            prop_assert!((-2.5..=2.5).contains(&x));
            prop_assert!([2usize, 4, 8].contains(&pick));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(mapped in (0u8..8).prop_map(|x| x * 2)) {
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(mapped < 16);
        }
    }
}
