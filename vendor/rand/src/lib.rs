//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the exact surface it consumes: [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], [`Rng::gen`], and the
//! [`distributions::Standard`] distribution. The generator is a
//! SplitMix64-seeded xoshiro256++ — deterministic and statistically solid,
//! though its streams intentionally make no compatibility promise with
//! upstream `rand` (the repo only relies on *a* fixed seeded stream, never
//! on specific upstream values).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of type `T` from the [`distributions::Standard`]
    /// distribution (uniform in `[0, 1)` for floats, uniform over the full
    /// range for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Sampling distributions.

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: crate::Rng>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform `[0, 1)` for floats, uniform
    /// over the whole value range for integers.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: crate::Rng>(&self, rng: &mut R) -> f32 {
            // 24 high bits -> [0, 1) with full single-precision coverage.
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: crate::Rng>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: crate::Rng>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: crate::Rng>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: crate::Rng>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f32> = (0..8).map(|_| a.gen::<f32>()).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.gen::<f32>()).collect();
        let zs: Vec<f32> = (0..8).map(|_| c.gen::<f32>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn standard_f32_is_in_unit_interval_and_nondegenerate() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let x: f32 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            distinct.insert(x.to_bits());
        }
        assert!(distinct.len() > 900, "stream looks degenerate");
    }
}
