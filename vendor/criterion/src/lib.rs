//! Offline stand-in for the `criterion` benchmark harness (0.5 API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with throughput annotations, [`Bencher::iter`], and
//! [`Bencher::iter_batched`]. It performs a short warm-up plus a fixed
//! measurement pass and prints mean wall-clock time per iteration — enough
//! to compare runs by hand, without upstream's statistics machinery.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the stub
/// always materialises one input per routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Units reported alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Measurement driver handed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Time `routine` over a warm-up pass and a fixed measurement pass.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20ms elapse to size the measurement pass.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Measurement: ~100ms worth of iterations, at least one.
        let target = (Duration::from_millis(100).as_nanos()
            / per_iter.as_nanos().max(1)) as u64;
        let iters = target.clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.iters = iters;
        self.mean = start.elapsed() / iters as u32;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < Duration::from_millis(100) && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean = total / iters.max(1) as u32;
    }
}

fn report(label: &str, throughput: Option<Throughput>, b: &Bencher) {
    let per = b.mean.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / per / 1e6)
        }
        Some(Throughput::Bytes(n)) if per > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / per / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{label:<50} {:>12.3} us/iter ({} iters){rate}", per * 1e6, b.iters);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { iters: 0, mean: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{id}", self.name), self.throughput, &b);
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { iters: 0, mean: Duration::ZERO };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), self.throughput, &b);
    }

    /// Finish the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _c: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, mean: Duration::ZERO };
        f(&mut b);
        report(id, None, &b);
        self
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
