//! Offline placeholder for `crossbeam`.
//!
//! The workspace declares a `crossbeam` dependency but every concurrent
//! structure it actually uses comes from `std` (`Mutex`, `Condvar`,
//! `thread::scope`). The build environment has no crates.io access, so this
//! empty vendored crate satisfies the manifest without pulling anything in.
