#!/usr/bin/env bash
# CI gate: build, tests, lints, and the static partition-plan analyzer.
# Everything here runs offline; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test -q --workspace

echo "== kernel conformance: SIMD and worker-pool paths bit-identical to the scalar oracles =="
# Runs the GEMM conformance suite twice: once with the AVX2 SIMD tier
# active (the default) and once with ESTI_DISABLE_SIMD forcing the scalar
# blocked fallback, so both dispatch tiers are proven against the naive
# oracle on every CI run.
cargo test -q --release -p esti-tensor --test kernels
ESTI_DISABLE_SIMD=1 cargo test -q --release -p esti-tensor --test kernels

echo "== thread conformance: intra-chip worker count invisible in logits and tokens =="
cargo test -q --release -p esti-runtime --test threads

echo "== overlap conformance: chunked executor bit-identical to monolithic =="
cargo test -q --release -p esti-runtime --test overlap

echo "== planner conformance: planned execution bit-identical, ledger well-formed =="
# The execution planner may pick any candidate mode per (layout, phase,
# dtype); whatever it picks must be bit-identical to monolithic and every
# planner-emittable schedule must pass the static analyzer.
cargo test -q --release -p esti-runtime --test planner
cargo test -q --release -p esti-verify --test planner_schedules

echo "== serving conformance: scheduler token streams identical to isolated generate =="
# Covers every built-in decode layout plus the ragged-workload proptest.
cargo test -q --release -p esti-runtime --test serving

echo "== int8 conformance: quantized wire volume and chunk-count bit-identity =="
# The int8 data path: chunked quantized all-gathers reassemble exactly,
# the ledger charges quantized (not dense f32) bytes, and int8 overlapped
# execution is bit-identical to monolithic for arbitrary chunk counts.
cargo test -q --release -p esti-collectives --test chunked
cargo test -q --release -p esti-runtime --test int8

echo "== paged-KV conformance: paged streams bit-identical to slab, capacity gated =="
# PR 9's paged KV cache: bit-identical slab-vs-paged token streams on
# every decode layout (multiquery and multihead), randomized ragged
# shared-prefix copy-on-write workloads, mid-decode crash + replay with
# paged state, and the >= 2x shared-prefix capacity claim at an equal
# KV position budget.
cargo test -q --release -p esti-runtime --test paged

echo "== overload conformance: preemption stream-transparent, shedding typed =="
# PR 10's SLO scheduler: any forced preemption schedule must leave token
# streams bit-identical to isolated generate, priority classes must admit
# highest-first, and queue/deadline shedding must surface as typed
# per-request ServeError::Overloaded — never a run failure.
cargo test -q --release -p esti-runtime --test overload

echo "== router conformance: replica crash loses nothing, streams identical =="
# An injected chip crash with an exhausted recovery budget drains the
# replica; its whole share must re-route and replay to bit-identical
# streams with the failover accounted in RecoveryStats.
cargo test -q --release -p esti-runtime --test router

echo "== fault conformance: crash any rank, recovered streams bit-identical =="
# PR 5's chaos suite: for every decode layout, crash or stall any rank at
# any step and require (a) a structured error within the deadline — never
# a hang — and (b) post-recovery token streams bit-identical to a
# fault-free run, with the replay cost matching esti-netsim's model.
cargo test -q --release -p esti-runtime --test faults

echo "== benches compile =="
cargo bench --no-run -q

echo "== clippy (workspace lints, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== esti-lint: static partition-plan, SPMD, liveness & quant-dataflow analysis =="
# check_combo runs every schedule twice — monolithic and with the
# runtime's overlap chunking — and run_scenario upgrades any skip on a
# planner-chosen layout to a failure, so a planner-chosen chunked
# schedule that fails to verify (or is skipped) fails this gate.
# --strict also fails the run on warnings (weight-gathered working-set
# margins), and --json writes the full row-by-row report as a CI
# artifact for dashboards (results/esti_lint.json).
mkdir -p results
lint_out=$(cargo run --release -p esti-verify --bin esti-lint -- --strict --json results/esti_lint.json)
echo "$lint_out"
if echo "$lint_out" | grep -q "skip planner"; then
  echo "FAIL: esti-lint skipped a planner-chosen schedule" >&2
  exit 1
fi
echo "esti-lint JSON report: results/esti_lint.json ($(wc -c < results/esti_lint.json) bytes)"

echo "== bench report: no untracked regressions =="
# Every flagged row — a decode row whose planner pick lost to monolithic
# or to the pre-PR baseline ("regression": true, which also covers
# speedup < 1.0), and the int8 wire row if its step time regressed — must
# carry a "tracking" reference (issue link or note); silent regressions
# fail CI. A row that flags regression without computing it from its own
# ratios would also be caught here: the flag is cross-checked against the
# published numbers.
python3 - <<'EOF'
import json, sys
report = json.load(open("BENCH_runtime.json"))
rows = report.get("decode", [])
bad = [r["layout"] for r in rows if r.get("regression") and not r.get("tracking")]
for r in rows:
    slow = r.get("planned_vs_mono", 1.0) < 1.0 or r.get("speedup", 1.0) < 1.0
    if slow and not r.get("regression"):
        bad.append(f"{r['layout']} (unflagged slowdown)")
wire = report.get("int8_wire", {})
if wire.get("regression") and not wire.get("tracking"):
    bad.append("int8_wire")
if wire.get("step_ratio", 0.0) > 1.0 and not wire.get("regression"):
    bad.append("int8_wire (unflagged step-time slowdown)")
paged = report.get("paged_kv", {})
if paged.get("regression") and not paged.get("tracking"):
    bad.append("paged_kv")
if paged.get("step_ratio", 0.0) > 1.05 and not paged.get("regression"):
    bad.append("paged_kv (unflagged step-overhead slowdown)")
over = report.get("overload", {})
if over.get("goodput_ratio", 1.0) < 0.7:
    bad.append("overload (goodput below 0.7x capacity ceiling)")
if over.get("high_p99_ttft_s", 0.0) > 1.0:
    bad.append("overload (high-class p99 TTFT above SLO)")
if over.get("shed", 1) == 0:
    bad.append("overload (bursty 2x trace shed nothing)")
router = report.get("router_failover", {})
if router.get("lost", 0) != 0:
    bad.append("router_failover (lost requests)")
if not router.get("streams_identical", True):
    bad.append("router_failover (streams diverged)")
if bad:
    sys.exit(f"FAIL: untracked regression(s) in BENCH_runtime.json: {bad}")
print(f"decode rows: {len(rows)}, untracked regressions: 0")
EOF

echo "== model-checked collectives (bounded-DFS interleavings) =="
RUSTFLAGS="--cfg loom" cargo test -q -p esti-collectives --test loom --release

echo "CI OK"
