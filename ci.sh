#!/usr/bin/env bash
# CI gate: build, tests, lints, and the static partition-plan analyzer.
# Everything here runs offline; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test -q --workspace

echo "== clippy (workspace lints, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== esti-lint: static partition-plan & SPMD schedule analysis =="
cargo run --release -p esti-verify --bin esti-lint

echo "== model-checked collectives (bounded-DFS interleavings) =="
RUSTFLAGS="--cfg loom" cargo test -q -p esti-collectives --test loom --release

echo "CI OK"
