//! Quickstart: partition a model, check it against the reference, and ask
//! the analytical model what the same layout costs at PaLM-540B scale.
//!
//! Run with: `cargo run --example quickstart`

use esti::core::perf::{estimate, PhaseSpec};
use esti::core::planner::{decode_layout_for_batch, prefill_layout};
use esti::core::Machine;
use esti::hal::units::format_seconds;
use esti::hal::DType;
use esti::model::{ModelConfig, ReferenceModel};
use esti::runtime::{GenerateOptions, PartitionedEngine, WeightFormat};
use esti::tensor::sample::Sampling;

fn main() {
    // ----------------------------------------------------------------- //
    // 1. Functional: run a tiny PaLM-shaped model partitioned over four  //
    //    simulated chips and verify it against the single-chip reference //
    // ----------------------------------------------------------------- //
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
    let machine4 = Machine::tpu_v4_slice(4).expect("4-chip slice in catalog");
    let layout = decode_layout_for_batch(model.config(), &machine4, 4);
    println!("tiny model partitioned as: {}", layout.describe());

    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let prompts: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 2, b + 3, b + 4]).collect();
    let generated = engine.generate(
        &prompts,
        &GenerateOptions { max_new_tokens: 6, sampling: Sampling::Greedy, ..Default::default() },
    );
    println!("greedy continuations: {generated:?}");
    println!(
        "collective traffic during serving: {} bytes over {} all-reduces + {} all-to-alls",
        engine.traffic().total_bytes(),
        engine.traffic().calls(esti::collectives::CollectiveOp::AllReduce),
        engine.traffic().calls(esti::collectives::CollectiveOp::AllToAll),
    );

    // ----------------------------------------------------------------- //
    // 2. Analytical: the same decisions at full scale on 64 TPU v4 chips //
    // ----------------------------------------------------------------- //
    let palm = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice in catalog");
    let (batch, input_len, gen_len) = (64usize, 2048usize, 64usize);

    let p_layout = prefill_layout(&palm, &machine, batch, input_len, DType::Int8);
    let d_layout = decode_layout_for_batch(&palm, &machine, batch);
    let prefill = estimate(&machine, &palm, &p_layout, &PhaseSpec::prefill(batch, input_len), DType::Int8);
    let step = estimate(&machine, &palm, &d_layout, &PhaseSpec::decode(batch, input_len), DType::Int8);

    println!();
    println!("{} on {} chips, int8 weights:", palm.name, machine.n_chips());
    println!(
        "  prefill  {:<22} {:>10}  (MFU {:>4.1}%)",
        p_layout.describe(),
        format_seconds(prefill.step_time),
        prefill.mfu * 100.0
    );
    println!(
        "  decode   {:<22} {:>10} per token (paper: 29ms)",
        d_layout.describe(),
        format_seconds(step.step_time)
    );
    println!(
        "  generating {gen_len} tokens: {}",
        format_seconds(prefill.step_time + step.step_time * gen_len as f64)
    );
}
