//! The long-context story (Section 3.3, Table 1): multiquery attention
//! sharded over *batch* supports up to 32x longer contexts than multihead
//! attention, because the KV cache divides across chips instead of
//! replicating.
//!
//! Run with: `cargo run --example context_scaling`

use esti::core::layout::AttnSharding;
use esti::core::memory::{kv_bytes_per_chip, table1_row};
use esti::core::Machine;
use esti::hal::units::format_bytes;
use esti::hal::DType;
use esti::model::{ModelConfig, ReferenceModel};
use esti::runtime::{PartitionedEngine, WeightFormat};

fn main() {
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");

    // Table 1: maximum context length with 30% of HBM reserved for KV.
    println!("Table 1 — max context on PaLM 540B, 64 chips (paper values in parens):");
    println!("{:>26} {:>18} {:>18}", "variant", "batch=128", "batch=512");
    let rows: [(&str, ModelConfig, AttnSharding, (u32, u32)); 3] = [
        ("multihead (dh=128)", ModelConfig::palm_540b_multihead(), AttnSharding::Head, (1320, 330)),
        ("baseline multiquery", ModelConfig::palm_540b(), AttnSharding::Head, (660, 165)),
        ("optimized multiquery", ModelConfig::palm_540b(), AttnSharding::Batch, (43_000, 10_700)),
    ];
    for (name, model, sharding, (p128, p512)) in rows {
        let c128 = table1_row(&model, sharding, &machine, 128);
        let c512 = table1_row(&model, sharding, &machine, 512);
        println!("{name:>26} {c128:>9} ({p128:>6}) {c512:>9} ({p512:>6})");
    }

    // The per-chip KV footprint behind those numbers, at context 2048.
    println!();
    println!("per-chip KV cache at batch 512, context 2048:");
    for (name, model, sharding) in [
        ("multihead / head", ModelConfig::palm_540b_multihead(), AttnSharding::Head),
        ("multiquery / head", ModelConfig::palm_540b(), AttnSharding::Head),
        ("multiquery / batch", ModelConfig::palm_540b(), AttnSharding::Batch),
    ] {
        let bytes = kv_bytes_per_chip(&model, sharding, 64, 512, 2048, DType::Bf16);
        println!("  {name:<20} {:>12}", format_bytes(bytes));
    }

    // Observe the same mechanism in the functional runtime.
    println!();
    println!("functional check (tiny model, 4 chips, batch 4, 8 cached tokens):");
    let tiny = ReferenceModel::init_random(ModelConfig::tiny(), 3);
    let prompts: Vec<Vec<usize>> = (0..4).map(|b| (0..8).map(|t| (b + t) % 40).collect()).collect();
    for sharding in [AttnSharding::Head, AttnSharding::Batch] {
        let layout = esti::core::layout::Layout {
            ffn: esti::core::layout::FfnLayout::WeightStationary1D,
            attn: sharding,
            mesh: esti::core::layout::MeshFactors::new(1, 4, 1),
        };
        let mut engine = PartitionedEngine::new(&tiny, layout, WeightFormat::Exact);
        let _ = engine.prefill(&prompts);
        println!(
            "  {:<6} sharding: {} KV elements on the busiest chip",
            sharding.name(),
            engine.max_cache_elements_per_chip()
        );
    }
}
