//! The partitioning advisor: sweep chips × batch × layout for a model and
//! print the Pareto frontier of latency vs cost (Figure 1's machinery),
//! then recommend a configuration for a latency target.
//!
//! Run with: `cargo run --example planner [-- <model> <latency_ms>]`
//! where `<model>` is one of `8b`, `62b`, `540b`, `mtnlg` (default `540b`)
//! and `<latency_ms>` is the decode per-token latency target (default 40).

use esti::core::pareto::{decode_sweep, pareto_frontier};
use esti::core::Machine;
use esti::hal::DType;
use esti::model::ModelConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = match args.get(1).map(String::as_str) {
        Some("8b") => ModelConfig::palm_8b(),
        Some("62b") => ModelConfig::palm_62b(),
        Some("mtnlg") => ModelConfig::mt_nlg_530b(),
        _ => ModelConfig::palm_540b_padded(),
    };
    let target_ms: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40.0);
    let context = 2048;

    println!("decode Pareto frontier for {} (context {context}, int8 weights)", model.name);
    println!(
        "{:>6} {:>6} {:>22} {:>12} {:>14} {:>7}",
        "chips", "batch", "layout", "ms/token", "chip-ms/token", "MFU%"
    );
    let sweep = decode_sweep(&model, DType::Int8, context);
    let frontier = pareto_frontier(&sweep, |p| p.cost);
    for p in &frontier {
        println!(
            "{:>6} {:>6} {:>22} {:>12.2} {:>14.3} {:>7.1}",
            p.n_chips,
            p.batch,
            p.layout.describe(),
            p.latency * 1e3,
            p.cost * 1e3,
            p.mfu * 100.0
        );
    }

    // Recommend: the cheapest frontier point meeting the latency target.
    println!();
    match frontier
        .iter()
        .filter(|p| p.latency * 1e3 <= target_ms)
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
    {
        Some(best) => {
            let machine = Machine::tpu_v4_slice(best.n_chips).expect("catalog slice");
            println!(
                "for a {target_ms:.0} ms/token target: {} chips ({}), batch {}, {} \
                 -> {:.1} ms/token at {:.3} chip-ms/token",
                best.n_chips,
                machine.torus,
                best.batch,
                best.layout.describe(),
                best.latency * 1e3,
                best.cost * 1e3
            );
        }
        None => {
            let fastest = frontier.first().expect("non-empty frontier");
            println!(
                "no configuration meets {target_ms:.0} ms/token; fastest is {:.1} ms/token \
                 on {} chips at batch {}",
                fastest.latency * 1e3,
                fastest.n_chips,
                fastest.batch
            );
        }
    }
}
