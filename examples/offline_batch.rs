//! The paper's high-throughput scenario (Tables 2–3): offline inference at
//! batch 512 with a 2048-token context, where the layout *switches* between
//! phases — weight-gathered XYZ for prefill (76% MFU in the paper), 2D
//! weight-stationary for decode — and bf16 weights beat int8 because the
//! compute, not weight loading, dominates.
//!
//! Run with: `cargo run --example offline_batch`

use esti::core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use esti::core::perf::{estimate, PhaseSpec};
use esti::core::planner::plan_inference;
use esti::core::Machine;
use esti::hal::units::format_seconds;
use esti::hal::DType;
use esti::model::{ModelConfig, ReferenceModel};
use esti::runtime::{PartitionedEngine, WeightFormat};

fn main() {
    let palm = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let (batch, input_len, gen_len) = (512usize, 2048usize, 64usize);

    // Let the planner pick the per-phase layouts (Section 4.1's strategy).
    let plan = plan_inference(&palm, &machine, batch, input_len, gen_len, DType::Bf16);
    println!("offline batch on {} ({} chips, bf16):", palm.name, machine.n_chips());
    println!("  prefill layout: {}  (paper: WG XYZ)", plan.prefill.describe());
    println!("  decode  layout: {}  (paper: WS 2D)", plan.decode.describe());
    println!(
        "  prefill {} x {input_len} tokens: {} at {:.1}% MFU (paper: 85.2s, 76%)",
        batch,
        format_seconds(plan.prefill_est.step_time),
        plan.prefill_est.mfu * 100.0
    );
    println!(
        "  decode  {} x {gen_len} tokens:   {} at {:.1}% MFU (paper: 6.0s, 33%)",
        batch,
        format_seconds(plan.decode_est.step_time),
        plan.decode_est.mfu * 100.0
    );
    println!(
        "  end-to-end: {} at {:.1}% overall MFU, {:.3} chip-ms per token",
        format_seconds(plan.total_latency),
        plan.total_mfu * 100.0,
        1e3 * machine.n_chips() as f64 * plan.total_latency
            / (batch * (input_len + gen_len)) as f64
    );

    // Why switch layouts? Compare the candidates explicitly at this batch.
    println!();
    println!("prefill layout comparison at {} tokens per pass:", batch * input_len);
    let mesh = Layout::ws2d_mesh(machine.n_chips(), palm.d_model, palm.d_ff);
    for ffn in [
        FfnLayout::WeightStationary2D,
        FfnLayout::WeightGathered(GatherExtent::X),
        FfnLayout::WeightGathered(GatherExtent::Xy),
        FfnLayout::WeightGathered(GatherExtent::Xyz),
    ] {
        let layout = Layout { ffn, attn: AttnSharding::Batch, mesh };
        let est = estimate(&machine, &palm, &layout, &PhaseSpec::prefill(batch, input_len), DType::Bf16);
        println!(
            "  {:<8} {:>10}  MFU {:>5.1}%  comm {:>9}",
            ffn.name(),
            format_seconds(est.step_time),
            est.mfu * 100.0,
            format_seconds(est.comm_time),
        );
    }

    // Functional demonstration of the weight-gathered dataflow: weights are
    // all-gathered per layer while activations stay batch-stationary.
    println!();
    println!("functional weight-gathered run (tiny model, 4 chips):");
    let tiny = ReferenceModel::init_random(ModelConfig::tiny(), 2);
    let layout = Layout {
        ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
        attn: AttnSharding::Batch,
        mesh: esti::core::layout::MeshFactors::new(4, 1, 1),
    };
    let mut engine = PartitionedEngine::new(&tiny, layout, WeightFormat::Bf16);
    let prompts: Vec<Vec<usize>> = (0..8).map(|b| vec![b, b + 1, b + 2, b + 3]).collect();
    let logits = engine.prefill(&prompts);
    println!(
        "  prefilled {} sequences; logits shape {:?}; weight all-gathers: {}",
        prompts.len(),
        logits.shape(),
        engine.traffic().calls(esti::collectives::CollectiveOp::AllGather)
    );
}
