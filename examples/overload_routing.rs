//! Serving under overload, end to end: a seeded bursty arrival trace
//! pushed through the SLO-aware scheduler in simulated time, then a live
//! two-replica router surviving an injected chip crash with zero lost
//! requests.
//!
//! Run with: `cargo run --release --example overload_routing [-- <n_requests>]`

use esti::collectives::FaultPlan;
use esti::core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors};
use esti::core::serving::{
    simulate_trace, ArrivalProcess, ArrivalTrace, LengthDist, OverloadPolicy, Priority,
    ServingConfig, TraceSpec,
};
use esti::core::Machine;
use esti::hal::DType;
use esti::model::{ModelConfig, ReferenceModel};
use esti::runtime::{ReplicaRouter, ServingOptions, ServingRequest, WeightFormat};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);

    // ------------------------------------------------------------------
    // 1. Trace-driven overload in simulated time: PaLM 540B on 64 chips,
    //    a Markov-modulated arrival process whose bursts offer ~2x the
    //    decode ceiling, ragged prompt/output lengths, three priority
    //    classes.
    // ------------------------------------------------------------------
    let model = ModelConfig::palm_540b_padded();
    let cfg = ServingConfig {
        prefill_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        decode_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        max_decode_batch: 64,
        input_len: 64,
        gen_len: 64,
        weight_dtype: DType::Int8,
    };
    let spec = TraceSpec {
        process: ArrivalProcess::Bursty { calm_rate: 5.0, burst_rate: 50.0, mean_dwell: 5.0 },
        prompt: LengthDist::Uniform { lo: 32, hi: 96 },
        output: LengthDist::Uniform { lo: 128, hi: 256 },
        high_fraction: 0.1,
        low_fraction: 0.3,
    };
    let trace = ArrivalTrace::generate(&spec, n, 11);
    println!(
        "trace: {n} requests over {:.0}s, offered {:.0} tok/s",
        trace.duration(),
        trace.offered_token_rate(),
    );

    let policy = OverloadPolicy {
        queue_limit: Some(256),
        ttft_deadline: [Some(20.0), Some(30.0), Some(60.0)],
        preemption: true,
    };
    let r = simulate_trace(&model, &cfg, &trace, &policy);
    println!(
        "policed: {} completed, {} shed, {} preemptions, {} tokens replayed",
        r.completed.len(),
        r.shed.len(),
        r.preemptions,
        r.replayed_tokens,
    );
    println!(
        "goodput: {:.0} tok/s = {:.2}x of the {:.0} tok/s capacity ceiling",
        r.goodput_tokens_per_sec(),
        r.goodput_ratio(),
        r.capacity_tokens_per_sec,
    );
    for class in [Priority::High, Priority::Normal, Priority::Low] {
        println!(
            "  {class:?}: {} completed / {} shed, p50 ttft {:.2}s, p99 ttft {:.2}s",
            r.class_completed(class),
            r.class_shed(class),
            r.class_ttft_percentile(class, 50.0),
            r.class_ttft_percentile(class, 99.0),
        );
    }

    // ------------------------------------------------------------------
    // 2. Fault-aware routing on the live engine: two tiny replicas, a
    //    chip crash injected into replica 0's first decode step, zero
    //    recovery budget — its whole share fails over and replays.
    // ------------------------------------------------------------------
    println!();
    let tiny = ReferenceModel::init_random(esti::model::ModelConfig::tiny(), 9);
    let vocab = tiny.config().vocab;
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let opts = ServingOptions { max_decode_batch: 2, ..ServingOptions::default() };
    let requests: Vec<ServingRequest> = (0..6)
        .map(|i| ServingRequest {
            prompt: (0..3).map(|t| (3 + 5 * i + 7 * t) % vocab).collect(),
            max_new_tokens: 4,
            seed: i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect();
    let mut router = ReplicaRouter::new(&tiny, layout, WeightFormat::Exact, opts, 2);
    router.batcher_mut(0).set_max_recoveries(0);
    router.batcher_mut(0).schedule_decode_fault(0, FaultPlan::new().crash(1, 0));
    let outcome = router.try_serve(&requests).expect("survivor absorbs the share");
    println!(
        "router: replica 0 crashed; {} failover re-routed {} requests, \
         {} of {} replicas still healthy",
        outcome.report.recovery.failovers,
        outcome.report.recovery.requests_rerouted,
        router.healthy_count(),
        router.replica_count(),
    );
    let lost = outcome.outputs.iter().filter(|o| o.is_empty()).count();
    println!(
        "router: {} requests all completed ({lost} lost), {} tokens generated, \
         served per replica {:?}",
        requests.len(),
        outcome.total_generated,
        outcome.served_per_replica,
    );
}
