//! The production pattern of Section 4.4: a batch-1 prefill server
//! pipelined into a batch-64 decoding server, under growing load.
//!
//! Run with: `cargo run --example serving_tier [-- <requests_per_second>]`

use esti::core::serving::{simulate, uniform_arrivals, ServingConfig};
use esti::core::Machine;
use esti::hal::DType;
use esti::model::ModelConfig;

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8.0);
    let model = ModelConfig::palm_540b_padded();
    let cfg = ServingConfig {
        prefill_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        decode_machine: Machine::tpu_v4_slice(64).expect("64-chip slice"),
        max_decode_batch: 64,
        input_len: 64,
        gen_len: 64,
        weight_dtype: DType::Int8,
    };

    println!(
        "serving {} at {rate:.1} req/s ({}-token prompts, {}-token replies, int8):",
        model.name, cfg.input_len, cfg.gen_len
    );
    let n = ((rate * 30.0).ceil() as usize).max(8);
    let report = simulate(&model, &cfg, &uniform_arrivals(n, rate));
    println!("  requests served : {}", report.requests.len());
    println!(
        "  throughput      : {:.0} generated tokens/s",
        report.throughput_tokens_per_sec(cfg.gen_len)
    );
    println!("  mean latency    : {:.2}s", report.mean_latency());
    println!("  p50 / p99       : {:.2}s / {:.2}s", report.latency_percentile(50.0), report.latency_percentile(99.0));
    println!("  avg decode batch: {:.1} of {}", report.mean_decode_batch, cfg.max_decode_batch);
    println!();
    println!(
        "try `cargo run --example serving_tier -- 64` to watch the decode tier saturate \
         at its batch cap."
    );
}
