//! The paper's interactive scenario (Section 1): a chatbot on PaLM 540B
//! processes 64 new tokens of user text against a 1920-token cached
//! conversation history and generates a 64-token reply — in about 1.9
//! seconds on 64 TPU v4 chips with int8 weights.
//!
//! This example replays that latency budget with the analytical model and
//! then demonstrates the mechanism functionally on a tiny model: chunked
//! (incremental) prefill of the history, then autoregressive decode.
//!
//! Run with: `cargo run --example chatbot`

use esti::core::perf::{estimate, generate_latency, PhaseSpec};
use esti::core::planner::{decode_layout_for_batch, prefill_layout};
use esti::core::Machine;
use esti::hal::units::format_seconds;
use esti::hal::DType;
use esti::model::{ModelConfig, ReferenceModel};
use esti::runtime::{GenerateOptions, PartitionedEngine, WeightFormat};
use esti::tensor::sample::Sampling;

fn main() {
    let palm = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(64).expect("64-chip slice");
    let dtype = DType::Int8;

    // The paper's trick (Section 4.4): batch-1 prefill for lowest latency,
    // but decode at batch 64 — "for the generate phase we can increase the
    // batch size up to 64 with negligible latency impact".
    let history = 1920usize;
    let user_turn = 64usize;
    let reply = 64usize;

    let p_layout = prefill_layout(&palm, &machine, 1, user_turn, dtype);
    let p = estimate(&machine, &palm, &p_layout, &PhaseSpec::prefill(1, user_turn), dtype);
    let d_layout = decode_layout_for_batch(&palm, &machine, 64);
    let d = generate_latency(&machine, &palm, &d_layout, 64, history + user_turn, reply, dtype);

    println!("chatbot turn on {} ({} chips, int8):", palm.name, machine.n_chips());
    println!("  history      : {history} tokens (already cached)");
    println!(
        "  prefill {user_turn} new tokens  [{}]: {}",
        p_layout.describe(),
        format_seconds(p.step_time)
    );
    println!(
        "  generate {reply} tokens      [{}]: {} ({} per token)",
        d_layout.describe(),
        format_seconds(d.step_time),
        format_seconds(d.step_time / reply as f64)
    );
    let total = p.step_time + d.step_time;
    println!("  total: {} (paper reports 1.9s)", format_seconds(total));

    // ------------------------------------------------------------------ //
    // The same serving pattern, actually executed on simulated chips.     //
    // ------------------------------------------------------------------ //
    println!();
    println!("functional replay on a tiny PaLM-shaped model, 4 simulated chips:");
    let tiny = ReferenceModel::init_random(ModelConfig::tiny(), 1);
    let machine4 = Machine::tpu_v4_slice(4).expect("4-chip slice");
    let layout = decode_layout_for_batch(tiny.config(), &machine4, 4);
    let mut engine = PartitionedEngine::new(&tiny, layout, WeightFormat::Int8);

    // A "conversation": history tokens prefilled in chunks (incremental
    // prefill), then the reply decoded token by token.
    let conversation: Vec<Vec<usize>> = (0..4)
        .map(|b| (0..12).map(|t| (b * 12 + t) % 40).collect())
        .collect();
    let reply_tokens = engine.generate(
        &conversation,
        &GenerateOptions {
            max_new_tokens: 5,
            sampling: Sampling::TopK(4),
            seed: 7,
            prefill_chunk: Some(4), // three incremental prefill chunks
            ..GenerateOptions::default()
        },
    );
    println!("  cached positions per sequence: {}", engine.cache_len());
    println!(
        "  per-chip KV elements (batch-sharded over {} chips): {}",
        engine.n_chips(),
        engine.max_cache_elements_per_chip()
    );
    for (i, r) in reply_tokens.iter().enumerate() {
        println!("  reply[{i}]: {r:?}");
    }
}
