//! Continuous batching, end to end (Section 4.4): variable-length requests
//! stream through the two-tier scheduler — batch-1 prefill pipelined into a
//! fixed-capacity decode batch — and every request's tokens come out
//! exactly as if it had the machine to itself.
//!
//! Run with: `cargo run --example continuous_batching`

use esti::core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors};
use esti::core::serving::Priority;
use esti::model::{ModelConfig, ReferenceModel};
use esti::runtime::{
    ContinuousBatcher, GenerateOptions, PartitionedEngine, ServingOptions, ServingRequest,
    WeightFormat,
};

fn main() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };

    // Six requests with different prompt lengths, reply lengths, and
    // arrival times, through a 3-slot decode tier: late requests are
    // admitted mid-stream as earlier ones finish and free their slots.
    let requests: Vec<ServingRequest> = (0..6)
        .map(|i| ServingRequest {
            prompt: (0..2 + i).map(|t| (7 * i + 3 * t + 1) % 41).collect(),
            max_new_tokens: 3 + (i * 2) % 5,
            seed: i as u64,
            arrival: i as f64 * 0.002,
            priority: Priority::Normal,
        })
        .collect();

    let opts = ServingOptions { max_decode_batch: 3, ..ServingOptions::default() };
    let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
    let outcome = batcher.serve(&requests);

    println!("served {} requests through a 3-slot decode tier:", requests.len());
    for (i, (req, out)) in requests.iter().zip(&outcome.outputs).enumerate() {
        let stats = &outcome.report.requests[i];
        println!(
            "  req {i}: prompt {:>2} tokens -> {:?}  (ttft {:.1} ms, latency {:.1} ms)",
            req.prompt.len(),
            out,
            stats.prefill_latency() * 1e3,
            stats.latency() * 1e3,
        );
    }
    println!(
        "decode steps: {} at mean batch {:.2} of 3; throughput {:.0} tok/s",
        outcome.report.decode_steps,
        outcome.report.mean_decode_batch,
        outcome.throughput_tokens_per_sec(),
    );

    // The conformance claim, demonstrated: rerun request 5 alone.
    let mut alone = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let req = &requests[5];
    let gopts = GenerateOptions {
        max_new_tokens: req.max_new_tokens,
        seed: req.seed,
        ..GenerateOptions::default()
    };
    let isolated =
        alone.generate(std::slice::from_ref(&req.prompt), &gopts).swap_remove(0);
    assert_eq!(outcome.outputs[5], isolated);
    println!("request 5 rerun alone produces the identical stream: {isolated:?}");
}
