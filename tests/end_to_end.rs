//! Workspace-level integration tests: the planner (esti-core), the
//! functional runtime (esti-runtime), the network simulator (esti-netsim)
//! and the memory model must agree with each other, not just each pass
//! their own unit tests.

use esti::core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors, PieceKind};
use esti::core::memory;
use esti::core::pareto::{decode_sweep, pareto_frontier};
use esti::core::planner::{decode_layout_for_batch, plan_inference};
use esti::core::Machine;
use esti::hal::{ChipSpec, DType};
use esti::model::{KvCache, ModelConfig, ReferenceModel};
use esti::netsim::{analytic_time, simulate_collective, CollectiveKind};
use esti::runtime::{GenerateOptions, PartitionedEngine, WeightFormat};
use esti::topology::{Axis, AxisSet, TorusShape};

#[test]
fn planner_choices_drive_a_working_engine() {
    // The layout the planner picks for decode must execute correctly.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 100);
    let machine = Machine::tpu_v4_slice(4).expect("catalog");
    let layout = decode_layout_for_batch(model.config(), &machine, 4);
    assert_eq!(layout.ffn, FfnLayout::WeightStationary2D);
    assert_eq!(layout.attn, AttnSharding::Batch);

    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let prompts: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 3, b + 5, b + 7]).collect();

    let mut cache = KvCache::new(model.config().n_layers);
    let expect = model.prefill(&prompts, &mut cache);
    let got = engine.prefill(&prompts);
    assert!(got.approx_eq(&expect, 2e-3), "max diff {}", got.max_abs_diff(&expect));
}

#[test]
fn plans_for_every_paper_model_are_sane() {
    for model in ModelConfig::paper_models() {
        for dtype in [DType::Bf16, DType::Int8] {
            let machine = Machine::tpu_v4_slice(64).expect("catalog");
            let plan = plan_inference(&model, &machine, 256, 2048, 64, dtype);
            assert!(plan.total_latency > 0.0, "{} {dtype}", model.name);
            assert!(plan.total_mfu > 0.01 && plan.total_mfu < 1.0, "{} {dtype}", model.name);
            assert!(
                plan.prefill_est.step_time > plan.decode_est.step_time / 64.0,
                "prefill of 2048 tokens must beat one decode step ({})",
                model.name
            );
        }
    }
}

#[test]
fn runtime_kv_footprint_matches_memory_model() {
    // The memory model's per-chip KV accounting (Table 1's engine) must
    // equal what the functional runtime actually stores.
    let cfg = ModelConfig::tiny();
    let model = ReferenceModel::init_random(cfg.clone(), 101);
    let (batch, len, n) = (4usize, 6usize, 4usize);
    let prompts: Vec<Vec<usize>> = (0..batch).map(|b| vec![b % 7; len]).collect();
    for sharding in [AttnSharding::Head, AttnSharding::Batch] {
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: sharding,
            mesh: MeshFactors::new(1, n, 1),
        };
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        let _ = engine.prefill(&prompts);
        let measured_elems = engine.max_cache_elements_per_chip() as f64;
        let model_bytes = memory::kv_bytes_per_chip(&cfg, sharding, n, batch, len, DType::F32);
        assert_eq!(
            measured_elems * 4.0,
            model_bytes,
            "KV accounting mismatch under {sharding:?}"
        );
    }
}

#[test]
fn netsim_validates_the_perf_models_collective_costs() {
    // The perf model charges WS2D's E/X-sized pieces over the yz axes and
    // its F/YZ-sized pieces over the x axis; the event simulator must agree
    // with the closed forms it uses.
    let chip = ChipSpec::tpu_v4();
    let torus = TorusShape::new(4, 4, 4);
    for (axes, bytes) in [
        (AxisSet::single(Axis::X), 2e6),
        (AxisSet::of(&[Axis::Y, Axis::Z]), 2e6),
    ] {
        for kind in [CollectiveKind::AllGather, CollectiveKind::ReduceScatter] {
            let sim = simulate_collective(&chip, torus, kind, axes, bytes);
            let ana = analytic_time(&chip, torus, kind, axes, bytes);
            let rel = (sim - ana).abs() / ana;
            assert!(rel < 0.4, "{kind:?} over {axes}: sim {sim} vs analytic {ana}");
        }
    }
}

#[test]
fn comm_pieces_follow_the_paper_axis_assignment() {
    // Cross-check of Appendix A.2.1 as encoded in the layout: at the
    // optimal mesh for F = 4E, the per-axis piece volumes are equal.
    let model = ModelConfig::palm_62b(); // F = 4E
    let layout = Layout::ws2d(&model, 64);
    let pieces = layout.layer_comm(&model, 512.0);
    let yz: Vec<_> = pieces.iter().filter(|p| p.axes == 2).collect();
    let x: Vec<_> = pieces.iter().filter(|p| p.axes == 1).collect();
    assert_eq!(yz.len(), 2);
    assert_eq!(x.len(), 2);
    assert!(
        (yz[0].elements - x[0].elements).abs() / x[0].elements < 1e-9,
        "balanced mesh must equalize E/X and F/YZ volumes"
    );
    assert!(pieces.iter().all(|p| p.kind == PieceKind::GatherScatter || p.kind == PieceKind::AllToAll));
}

#[test]
fn generation_is_deterministic_across_layouts() {
    // Greedy generation must produce identical tokens whichever layout
    // executes it — partitioning is an implementation detail.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 102);
    let prompts: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 2, b + 4, b + 6, b + 8]).collect();
    let opts = GenerateOptions { max_new_tokens: 6, ..GenerateOptions::default() };
    let mut outputs = Vec::new();
    for layout in [
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, 4, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(esti::core::layout::GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(4, 1, 1),
        },
    ] {
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        outputs.push(engine.generate(&prompts, &opts));
    }
    assert_eq!(outputs[0], outputs[1], "1D vs 2D generation diverged");
    assert_eq!(outputs[0], outputs[2], "1D vs WG generation diverged");
}

#[test]
fn pareto_frontiers_exist_for_all_models_and_dtypes() {
    for model in ModelConfig::paper_models() {
        for dtype in [DType::Bf16, DType::Int8] {
            let sweep = decode_sweep(&model, dtype, 2048);
            assert!(!sweep.is_empty(), "{} {dtype}: empty sweep", model.name);
            let frontier = pareto_frontier(&sweep, |p| p.cost);
            assert!(!frontier.is_empty());
            for w in frontier.windows(2) {
                assert!(w[0].latency <= w[1].latency);
                assert!(w[0].cost >= w[1].cost);
            }
        }
    }
}

#[test]
fn headline_chatbot_latency_is_order_correct() {
    // Section 1: 64-token turn + 1920-token history + 64-token reply on
    // 64 chips, int8 -> ~1.9s. Our simulated hardware should land within
    // 2x of that.
    let model = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(64).expect("catalog");
    let prefill_l = esti::core::planner::prefill_layout(&model, &machine, 1, 64, DType::Int8);
    let prefill = esti::core::perf::estimate(
        &machine,
        &model,
        &prefill_l,
        &esti::core::perf::PhaseSpec::prefill(1, 64),
        DType::Int8,
    );
    let decode_l = decode_layout_for_batch(&model, &machine, 64);
    let decode =
        esti::core::perf::generate_latency(&machine, &model, &decode_l, 64, 1984, 64, DType::Int8);
    let total = prefill.step_time + decode.step_time;
    assert!(total > 0.95 && total < 3.8, "chatbot total {total}s, paper 1.9s");
}
